// Flat-arena FIFO rings for the machine models' scheduler queues.
//
// Every per-processor ready/admission FIFO in the three machine backends is
// a queue of small integer ids (thread, warp) with a membership invariant:
// an id is enqueued at most once at a time (a thread re-enters the ready
// FIFO only after its previous entry was dispatched and its next operation
// completed). That bounds each queue's occupancy by the number of ids
// round-robin-assigned to its processor, so all of a machine's queues can
// live as fixed windows of ONE flat arena sized once per region — zero
// steady-state allocation in the event loop, and clearing between regions
// is an index reset, never a deallocation.
//
// RingView does not own storage: it holds a pointer into the machine's
// arena (a std::vector<u32> that is sized before any view is bound and not
// resized while views are live) plus a power-of-two wrap mask. push/pop are
// a store/load plus an increment — no branch, no capacity growth. Debug
// builds check overflow (a violated membership invariant) and underflow.
#pragma once

#include <bit>

#include "common/check.hpp"
#include "sim/types.hpp"

namespace archgraph::sim {

class RingView {
 public:
  RingView() = default;

  /// Binds the view to `capacity` (a power of two) slots starting at
  /// `slots`, and empties it. The storage must stay put while bound.
  void bind(u32* slots, u32 capacity) {
    AG_DCHECK(capacity > 0 && std::has_single_bit(capacity),
              "RingView capacity must be a power of two");
    slots_ = slots;
    mask_ = capacity - 1;
    head_ = 0;
    tail_ = 0;
  }

  /// Clear-by-index: forgets the contents without touching the arena.
  void clear() {
    head_ = 0;
    tail_ = 0;
  }

  bool empty() const { return head_ == tail_; }
  u32 size() const { return tail_ - head_; }

  void push(u32 v) {
    AG_DCHECK(size() <= mask_, "RingView overflow: membership bound violated");
    slots_[tail_++ & mask_] = v;
  }

  u32 front() const {
    AG_DCHECK(!empty(), "RingView::front() on an empty ring");
    return slots_[head_ & mask_];
  }

  u32 pop() {
    AG_DCHECK(!empty(), "RingView::pop() on an empty ring");
    return slots_[head_++ & mask_];
  }

 private:
  u32* slots_ = nullptr;
  u32 mask_ = 0;
  // Free-running indices (wrap via mask_): size stays correct across u32
  // wraparound because the difference is taken in modular arithmetic.
  u32 head_ = 0;
  u32 tail_ = 0;
};

/// Smallest power of two >= max(n, 1), as a u32 (ring capacities are far
/// below 2^31 — a region's queues are bounded by its thread count).
inline u32 ring_capacity_for(usize n) {
  return static_cast<u32>(std::bit_ceil(n | 1));
}

}  // namespace archgraph::sim
