// Basic types shared by the architecture simulators.
#pragma once

#include "common/types.hpp"

namespace archgraph::sim {

/// Simulated word address. Simulated memory is word-addressed (one word =
/// 64 data bits + tag bits, as on the MTA); byte granularity only matters to
/// the SMP cache model, which converts via kWordBytes.
using Addr = u64;

inline constexpr u64 kWordBytes = 8;

/// Simulated clock cycle.
using Cycle = i64;

/// Operations a simulated thread can issue. Every operation consumes issue
/// slots on its processor and possibly memory/bus time; the machine models
/// decide the costs.
enum class OpKind : u8 {
  kNone,
  kLoad,      // ordinary load, ignores tag bits
  kStore,     // ordinary store, sets the word full
  kReadFF,    // MTA readff: wait until full, read, leave full
  kReadFE,    // MTA readfe: wait until full, read, set empty
  kWriteEF,   // MTA writeef: wait until empty, write, set full
  kFetchAdd,  // int_fetch_add: atomic add at the memory bank, returns old
  kCompute,   // `value` ALU instructions (1 issue slot each)
  kBarrier,   // wait for all live threads of the region
  kDone,      // internal: coroutine finished
};

struct Operation {
  OpKind kind = OpKind::kNone;
  Addr addr = 0;
  i64 value = 0;   // store value / fetch-add delta / compute slot count
  i64 result = 0;  // load result / fetch-add old value
};

}  // namespace archgraph::sim
