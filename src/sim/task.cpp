#include "sim/task.hpp"

#include "common/check.hpp"

namespace archgraph::sim {

void ThreadState::advance() {
  AG_DCHECK(handle && !handle.done(), "advancing a finished thread");
  // NOTE: `pending` must stay intact across the resume — the suspended
  // OpAwaiter reads pending.result as the value of its co_await. The resume
  // then either suspends at the next OpAwaiter (overwriting `pending`) or
  // runs to completion (final_suspend sets kDone).
  handle.resume();
  AG_DCHECK(pending.kind != OpKind::kNone, "kernel suspended without an op");
}

SimThread& SimThread::operator=(SimThread&& other) noexcept {
  if (this != &other) {
    if (handle_) {
      handle_.destroy();
    }
    handle_ = other.handle_;
    other.handle_ = nullptr;
  }
  return *this;
}

SimThread::~SimThread() {
  if (handle_) {
    handle_.destroy();
  }
}

std::coroutine_handle<> SimThread::bind(ThreadState* state) {
  AG_CHECK(handle_ != nullptr, "binding an empty SimThread");
  handle_.promise().state = state;
  std::coroutine_handle<> out = handle_;
  handle_ = nullptr;
  return out;
}

}  // namespace archgraph::sim
