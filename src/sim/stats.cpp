#include "sim/stats.hpp"

#include <iomanip>
#include <sstream>

namespace archgraph::sim {

std::string MachineStats::summary(u32 processors) const {
  std::ostringstream os;
  os << "cycles:            " << cycles << '\n'
     << "instructions:      " << instructions << '\n'
     << "utilization:       " << std::fixed << std::setprecision(1)
     << 100.0 * utilization(processors) << "%\n"
     << "memory ops:        " << memory_ops << " (" << loads << " ld, "
     << stores << " st, " << fetch_adds << " fa, " << sync_ops << " sync)\n"
     << "sync retries:      " << sync_retries << '\n'
     << "barriers:          " << barriers << '\n'
     << "regions/threads:   " << regions << " / " << threads << '\n';
  if (l1_hits + l2_hits + mem_fills > 0) {
    const double total =
        static_cast<double>(l1_hits + l2_hits + mem_fills);
    os << "L1 hits:           " << l1_hits << " ("
       << 100.0 * static_cast<double>(l1_hits) / total << "%)\n"
       << "L2 hits:           " << l2_hits << '\n'
       << "memory fills:      " << mem_fills << '\n'
       << "writebacks:        " << writebacks << '\n'
       << "invalidations:     " << invalidations << '\n'
       << "interventions:     " << interventions << '\n'
       << "bus busy cycles:   " << bus_busy << '\n'
       << "context switches:  " << context_switches << '\n';
  }
  return os.str();
}

MachineStats operator-(const MachineStats& after, const MachineStats& before) {
  MachineStats d;
  d.instructions = after.instructions - before.instructions;
  d.memory_ops = after.memory_ops - before.memory_ops;
  d.loads = after.loads - before.loads;
  d.stores = after.stores - before.stores;
  d.fetch_adds = after.fetch_adds - before.fetch_adds;
  d.sync_ops = after.sync_ops - before.sync_ops;
  d.sync_retries = after.sync_retries - before.sync_retries;
  d.barriers = after.barriers - before.barriers;
  d.regions = after.regions - before.regions;
  d.threads = after.threads - before.threads;
  d.cycles = after.cycles - before.cycles;
  d.l1_hits = after.l1_hits - before.l1_hits;
  d.l2_hits = after.l2_hits - before.l2_hits;
  d.mem_fills = after.mem_fills - before.mem_fills;
  d.writebacks = after.writebacks - before.writebacks;
  d.invalidations = after.invalidations - before.invalidations;
  d.interventions = after.interventions - before.interventions;
  d.context_switches = after.context_switches - before.context_switches;
  d.bus_busy = after.bus_busy - before.bus_busy;
  return d;
}

}  // namespace archgraph::sim
