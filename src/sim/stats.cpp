#include "sim/stats.hpp"

#include <iomanip>
#include <sstream>

namespace archgraph::sim {

std::string MachineStats::summary(u32 processors) const {
  std::ostringstream os;
  os << "cycles:            " << cycles << '\n'
     << "instructions:      " << instructions << '\n'
     << "utilization:       " << std::fixed << std::setprecision(1)
     << 100.0 * utilization(processors) << "%\n"
     << "memory ops:        " << memory_ops << " (" << loads << " ld, "
     << stores << " st, " << fetch_adds << " fa, " << sync_ops << " sync)\n"
     << "sync retries:      " << sync_retries << '\n'
     << "barriers:          " << barriers << '\n'
     << "regions/threads:   " << regions << " / " << threads << '\n';
  if (l1_hits + l2_hits + mem_fills > 0) {
    const double total =
        static_cast<double>(l1_hits + l2_hits + mem_fills);
    os << "L1 hits:           " << l1_hits << " ("
       << 100.0 * static_cast<double>(l1_hits) / total << "%)\n"
       << "L2 hits:           " << l2_hits << '\n'
       << "memory fills:      " << mem_fills << '\n'
       << "writebacks:        " << writebacks << '\n'
       << "invalidations:     " << invalidations << '\n'
       << "interventions:     " << interventions << '\n'
       << "bus busy cycles:   " << bus_busy << '\n'
       << "context switches:  " << context_switches << '\n';
  }
  return os.str();
}

}  // namespace archgraph::sim
