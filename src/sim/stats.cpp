#include "sim/stats.hpp"

#include <iomanip>
#include <sstream>

namespace archgraph::sim {

const char* cycle_cat_name(CycleCat cat) {
  switch (cat) {
    case CycleCat::kIssued:
      return "issued";
    case CycleCat::kNoReadyStream:
      return "no_ready_stream";
    case CycleCat::kSyncBlocked:
      return "sync_blocked";
    case CycleCat::kBarrier:
      return "barrier";
    case CycleCat::kIdleNoThread:
      return "idle_no_thread";
    case CycleCat::kL1MissWait:
      return "l1_miss_wait";
    case CycleCat::kL2MissWait:
      return "l2_miss_wait";
    case CycleCat::kMemFillWait:
      return "mem_fill_wait";
    case CycleCat::kBusContention:
      return "bus_contention";
    case CycleCat::kRmwSpin:
      return "rmw_spin";
    case CycleCat::kBarrierWait:
      return "barrier_wait";
    case CycleCat::kIdle:
      return "idle";
    case CycleCat::kDivergenceSerial:
      return "divergence_serial";
    case CycleCat::kCoalesceWait:
      return "coalesce_wait";
    case CycleCat::kBankConflict:
      return "bank_conflict";
    case CycleCat::kCount:
      break;
  }
  return "?";
}

Cycle CycleBreakdown::total() const {
  Cycle sum = 0;
  for (const Cycle v : slots) {
    sum += v;
  }
  return sum;
}

double CycleBreakdown::share(CycleCat cat) const {
  const Cycle sum = total();
  if (sum <= 0) return 0.0;
  return static_cast<double>((*this)[cat]) / static_cast<double>(sum);
}

CycleBreakdown operator-(const CycleBreakdown& after,
                         const CycleBreakdown& before) {
  CycleBreakdown d;
  for (usize i = 0; i < kCycleCatCount; ++i) {
    d.slots[i] = after.slots[i] - before.slots[i];
  }
  return d;
}

std::string MachineStats::summary(u32 processors) const {
  std::ostringstream os;
  os << "cycles:            " << cycles << '\n'
     << "instructions:      " << instructions << '\n'
     << "utilization:       " << std::fixed << std::setprecision(1)
     << 100.0 * utilization(processors) << "%\n"
     << "memory ops:        " << memory_ops << " (" << loads << " ld, "
     << stores << " st, " << fetch_adds << " fa, " << sync_ops << " sync)\n"
     << "sync retries:      " << sync_retries << '\n'
     << "barriers:          " << barriers << '\n'
     << "regions/threads:   " << regions << " / " << threads << '\n';
  if (l1_hits + l2_hits + mem_fills > 0) {
    const double total =
        static_cast<double>(l1_hits + l2_hits + mem_fills);
    os << "L1 hits:           " << l1_hits << " ("
       << 100.0 * static_cast<double>(l1_hits) / total << "%)\n"
       << "L2 hits:           " << l2_hits << '\n'
       << "memory fills:      " << mem_fills << '\n'
       << "writebacks:        " << writebacks << '\n'
       << "invalidations:     " << invalidations << '\n'
       << "interventions:     " << interventions << '\n'
       << "bus busy cycles:   " << bus_busy << '\n'
       << "context switches:  " << context_switches << '\n';
  }
  if (breakdown.total() > 0) {
    os << "cycle accounting:  ";
    bool first = true;
    for (usize i = 0; i < kCycleCatCount; ++i) {
      const auto cat = static_cast<CycleCat>(i);
      if (breakdown[cat] == 0) continue;
      if (!first) os << ", ";
      os << cycle_cat_name(cat) << " "
         << 100.0 * breakdown.share(cat) << "%";
      first = false;
    }
    os << '\n';
  }
  return os.str();
}

MachineStats operator-(const MachineStats& after, const MachineStats& before) {
  MachineStats d;
  d.instructions = after.instructions - before.instructions;
  d.memory_ops = after.memory_ops - before.memory_ops;
  d.loads = after.loads - before.loads;
  d.stores = after.stores - before.stores;
  d.fetch_adds = after.fetch_adds - before.fetch_adds;
  d.sync_ops = after.sync_ops - before.sync_ops;
  d.sync_retries = after.sync_retries - before.sync_retries;
  d.barriers = after.barriers - before.barriers;
  d.regions = after.regions - before.regions;
  d.threads = after.threads - before.threads;
  d.cycles = after.cycles - before.cycles;
  d.l1_hits = after.l1_hits - before.l1_hits;
  d.l2_hits = after.l2_hits - before.l2_hits;
  d.mem_fills = after.mem_fills - before.mem_fills;
  d.writebacks = after.writebacks - before.writebacks;
  d.invalidations = after.invalidations - before.invalidations;
  d.interventions = after.interventions - before.interventions;
  d.context_switches = after.context_switches - before.context_switches;
  d.bus_busy = after.bus_busy - before.bus_busy;
  d.breakdown = after.breakdown - before.breakdown;
  return d;
}

}  // namespace archgraph::sim
