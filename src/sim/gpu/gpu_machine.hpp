// Cycle-approximate model of a SIMT/GPU-class machine — the third
// architecture class next to the MTA (sim/mta) and SMP (sim/smp). Grounding:
// Dehne & Yogaratnam, "Exploring the Limits of GPUs With Parallel Graph
// Algorithms" (PAPERS.md) — lockstep warps win on dense, regular, coalesced
// access and lose to latency-tolerant multithreading as divergence and
// scatter grow. This model makes that crossover measurable on the repo's
// machine-neutral kernels.
//
// What is modelled:
//   * p streaming multiprocessors (SMs). Threads are grouped into warps of
//     `warp_width` consecutive thread ids; warps are assigned round-robin to
//     SMs. Each SM holds at most `warps_per_processor` resident warps
//     (occupancy); excess warps queue for admission and enter as resident
//     warps retire — the GPU's analog of the MTA's stream admission.
//   * Warp-lockstep issue: an SM issues one warp-instruction per cycle to a
//     ready warp (round-robin over the ready list — latency hiding at warp
//     granularity, like the MTA's streams). A warp is ready only when none
//     of its lanes has an operation in flight: the whole warp waits for its
//     slowest lane. Lanes parked on a full/empty tag or a barrier are masked
//     off and do not block the rest of the warp.
//   * Divergence serialization: when the runnable lanes of a warp present
//     different operations (they took different branches, so their op
//     streams diverged), the lanes are partitioned into groups by operation
//     and the groups issue serially — a branch-mask split with implicit
//     reconvergence at the next common op. The first group's issue slot is
//     kIssued; every further group's slots are charged kDivergenceSerial.
//   * Coalesced-vs-scattered global memory: the addresses a warp's load or
//     store group touches are merged into aligned `mem_seg_bytes` segments;
//     one transaction per distinct segment. A warp touching one segment pays
//     one transaction; fully scattered lanes pay one each, serialized on the
//     SM's load/store pipe (extra transactions charged kCoalesceWait).
//     Atomics (fetch_add, full/empty probes) always serialize per lane. The
//     group completes — and the warp becomes ready again — `lat_mem` cycles
//     after its last transaction.
//   * Shared-memory scratchpad: each SM has a `smem_words`-word
//     direct-mapped scratchpad standing in for the staging a hand-tuned
//     CUDA port would manage explicitly (kernels here are machine-neutral
//     op streams, so the model captures the reuse instead of the
//     programmer). Loads/stores that hit it are serviced in `lat_smem`
//     cycles; lanes whose words map to the same of the `smem_banks` banks
//     serialize, the extra slots charged kBankConflict. The scratchpad is a
//     timing model only — data always comes from SimMemory at service time,
//     so it needs (and models) no coherence.
//   * Cycle accounting closes per region (sum == SMs x cycles): issue slots
//     split into kIssued / kDivergenceSerial / kCoalesceWait /
//     kBankConflict; silent gaps settle to kCoalesceWait (global round trip
//     in flight, latency not hidden), kSyncBlocked (lanes parked on tags),
//     kBarrier, or kIdleNoThread — the same settle discipline as the MTA.
//
// Not modelled (see DESIGN.md §3): instruction caches, L2, special-function
// units, and memory bandwidth limits beyond the one-transaction-per-cycle
// LSU; utilization is defined at warp-instruction granularity (a fully busy
// SM issues one warp-instruction per cycle), so Table-1-style utilization
// stays in [0, 1].
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/ring.hpp"

namespace archgraph::sim {

struct GpuConfig {
  u32 processors = 1;           // streaming multiprocessors (SMs)
  u32 warps_per_processor = 32; // resident warp slots per SM (occupancy)
  u32 warp_width = 32;          // lanes per warp (lockstep width)
  /// Global-memory round trip in cycles (HBM-class: hundreds of cycles at
  /// ~1 GHz; the whole warp stalls for it unless other warps cover it).
  Cycle memory_latency = 300;
  /// Aligned coalescing segment: a warp's accesses falling in one
  /// `mem_seg_bytes` segment merge into one transaction.
  u64 mem_seg_bytes = 128;
  /// Shared-memory scratchpad banks per SM; lanes hitting the same bank
  /// serialize.
  u32 smem_banks = 32;
  /// Scratchpad capacity per SM in words (direct-mapped by word address).
  u32 smem_words = 4096;
  /// Scratchpad access latency in cycles.
  Cycle smem_latency = 24;
  /// Cost of entering a parallel region (kernel launch + block dispatch).
  Cycle region_fork_cycles = 512;
  /// Extra cycles between the last barrier arrival and the release
  /// (grid-wide sync is expensive on real GPUs: it ends the kernel).
  Cycle barrier_overhead = 128;
  double clock_hz = 1000e6;  // 1 GHz SM clock

  bool operator==(const GpuConfig&) const = default;
};

/// Rejects configurations the model cannot simulate (zero processors, warps
/// or lanes, a coalescing segment smaller than a word or not word-aligned,
/// non-positive latencies or clock); throws std::logic_error naming the
/// offending GpuConfig field. Called by the GpuMachine constructor and by
/// the machine-spec factory before it.
void validate(const GpuConfig& config);

class GpuMachine final : public Machine {
 public:
  explicit GpuMachine(GpuConfig config = {});

  u32 processors() const override { return config_.processors; }
  double clock_hz() const override { return config_.clock_hz; }
  /// Thread slots resident at once: SMs x warps x lanes. Kernel drivers size
  /// fine-grain worker counts from this, exactly like the MTA's streams.
  i64 concurrency() const override {
    return static_cast<i64>(config_.processors) * config_.warps_per_processor *
           config_.warp_width;
  }
  const GpuConfig& config() const { return config_; }

  /// Gauges: per-SM issued warp-instruction slots (cumulative; reset each
  /// region), then aggregate ready warps, blocked warps, and outstanding
  /// global-memory lane operations (instantaneous).
  std::vector<ProfGaugeInfo> prof_gauge_info() const override;
  void sample_prof_gauges(i64* out) const override;

 protected:
  Cycle simulate(std::vector<ThreadState*>& threads) override;

 private:
  // kBatch resumes a whole issue group (payload = warp id << 4 | OpKind) with
  // one event instead of one per lane; kRelease resumes a barrier episode
  // from release_buf_. Both replay their lanes in ascending-tid order, which
  // is exactly the order the per-lane events used to pop in.
  enum EventKind : u32 { kIssue, kComplete, kRetry, kBatch, kRelease };

  struct Warp {
    u32 first = 0;  // member lanes are the consecutive tids [first, last)
    u32 last = 0;
    u32 sm = 0;
    u32 live = 0;       // members not yet finished
    u32 in_flight = 0;  // lanes with an op in flight (blocks the next issue)
    bool resident = false;
    bool queued = false;  // sitting in the SM's ready fifo
  };

  struct Sm {
    RingView ready_fifo;       // warp ids ready to issue (round-robin)
    RingView admission_queue;  // warps waiting for a resident slot
    u32 resident = 0;
    bool issue_scheduled = false;
    Cycle clock = 0;  // next cycle this SM's issue/LSU pipe is free
    i64 issued = 0;   // warp-instruction slots consumed (profiling gauge)

    // Scratchpad tag array (timing only; data lives in SimMemory).
    std::vector<Addr> smem_tags;

    // Cycle accounting: slots in [0, acct_until) are attributed; the wait
    // counters classify the gap up to the next transition (settle()).
    Cycle acct_until = 0;
    i32 acct_mem = 0;      // lanes with a global round trip in flight
    i32 acct_sync = 0;     // lanes parked on a full/empty tag
    i32 acct_barrier = 0;  // lanes waiting at the barrier
  };

  // Per-region simulation helpers (operate on region_ state).
  /// The event loop, instantiated once with the per-pop profiler call and
  /// once without, so unprofiled runs pay no per-event null test.
  template <bool Profiled>
  void run_events();
  void admit_warp(u32 wid, Cycle now);
  void maybe_enqueue_warp(u32 wid, Cycle now);
  /// Instantiated per profiling mode by run_events so the per-lane heatmap
  /// hook calls compile out of unprofiled runs entirely.
  template <bool Profiled>
  void handle_issue(u32 sm_id, Cycle now);
  void post_advance(u32 tid, Cycle now);
  void on_finish(u32 tid, Cycle now);
  void attempt_sync_retry(u32 tid, Cycle now);
  void wake_waiters(Addr addr, Cycle now);
  void barrier_arrive(u32 tid, Cycle now);
  void maybe_release_barrier();
  /// Cycle accounting: attributes the unaccounted slots [acct_until, t) of
  /// `sm` to the stall category its wait counters imply, then advances
  /// acct_until. A no-op when t <= acct_until (past-time events).
  void settle(Sm& sm, Cycle t);
  /// Claims the unaccounted slots up to `t` as `cat` occupancy. Clamped so
  /// acct_until never moves backward — no slot is attributed twice even when
  /// a barrier release replays resumed warps at already-settled times.
  void attribute_upto(Sm& sm, CycleCat cat, Cycle t);
  /// Settles the completing thread's SM at `now` and releases the wait
  /// counter its pre-advance pending op held.
  void acct_complete(u32 tid, Cycle now);
  /// Scratchpad probe: true when `addr` currently tags its slot on `sm`
  /// (loads/stores only; misses fill the slot).
  bool smem_probe(Sm& sm, Addr addr, bool fill);
  usize segment_of(Addr addr) const {
    // validate() guarantees mem_seg_bytes is word-aligned, so the quotient
    // form equals the byte form; pow2 geometry (every stock preset) turns
    // the per-lane divide into a shift.
    if (seg_pow2_) {
      return static_cast<usize>(addr >> seg_shift_);
    }
    return static_cast<usize>(addr * kWordBytes / config_.mem_seg_bytes);
  }

  GpuConfig config_;

  // Precomputed address-map geometry (constructor): pow2 segment/bank/slot
  // counts — every stock preset — compile the three per-lane divides in the
  // issue path down to shifts and masks.
  bool seg_pow2_ = false;
  u32 seg_shift_ = 0;
  u32 bank_mask_ = 0;  // smem_banks - 1 when pow2, else 0 (use modulo)
  u32 smem_mask_ = 0;  // smem_words - 1 when pow2, else 0 (use modulo)

  // Region-scoped state (reset by simulate()).
  std::vector<ThreadState*> threads_;
  std::vector<Sm> sms_;
  std::vector<Warp> warps_;
  std::vector<u32> ring_arena_;  // backs every SM's two rings
  std::unordered_map<Addr, std::deque<u32>> sync_waiters_;
  std::vector<u32> barrier_waiting_;
  std::vector<u32> release_buf_;  // lanes resumed by the pending kRelease
  Cycle barrier_max_arrival_ = 0;
  i64 live_ = 0;
  Cycle region_end_ = 0;
  EventQueue events_;

  // Scratch buffers reused across issue rounds (kept out of the hot loop).
  std::vector<u32> runnable_lanes_;
  std::vector<u32> group_lanes_;
  std::vector<usize> segments_;
  std::vector<u32> bank_load_;
};

}  // namespace archgraph::sim
