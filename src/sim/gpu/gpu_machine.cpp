#include "sim/gpu/gpu_machine.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace archgraph::sim {

namespace {
/// Scratchpad tag meaning "slot empty" — simulated addresses are dense
/// bump-allocated indices, so the all-ones word never occurs.
constexpr Addr kNoTag = ~Addr{0};
}  // namespace

void validate(const GpuConfig& c) {
  AG_CHECK(c.processors >= 1, "GpuConfig.processors must be >= 1 (got " +
                                  std::to_string(c.processors) + ")");
  AG_CHECK(c.warps_per_processor >= 1,
           "GpuConfig.warps_per_processor must be >= 1 (got " +
               std::to_string(c.warps_per_processor) + ")");
  AG_CHECK(c.warp_width >= 1, "GpuConfig.warp_width must be >= 1 (got " +
                                  std::to_string(c.warp_width) + ")");
  AG_CHECK(c.memory_latency >= 2,
           "GpuConfig.memory_latency must cover the round trip (>= 2, got " +
               std::to_string(c.memory_latency) + ")");
  AG_CHECK(c.mem_seg_bytes >= kWordBytes && c.mem_seg_bytes % kWordBytes == 0,
           "GpuConfig.mem_seg_bytes must be a positive multiple of the " +
               std::to_string(kWordBytes) + "-byte word (got " +
               std::to_string(c.mem_seg_bytes) + ")");
  AG_CHECK(c.smem_banks >= 1, "GpuConfig.smem_banks must be >= 1 (got " +
                                  std::to_string(c.smem_banks) + ")");
  AG_CHECK(c.smem_words >= 1, "GpuConfig.smem_words must be >= 1 (got " +
                                  std::to_string(c.smem_words) + ")");
  AG_CHECK(c.smem_latency >= 1, "GpuConfig.smem_latency must be >= 1 (got " +
                                    std::to_string(c.smem_latency) + ")");
  AG_CHECK(c.region_fork_cycles >= 0,
           "GpuConfig.region_fork_cycles must be >= 0 (got " +
               std::to_string(c.region_fork_cycles) + ")");
  AG_CHECK(c.barrier_overhead >= 0,
           "GpuConfig.barrier_overhead must be >= 0 (got " +
               std::to_string(c.barrier_overhead) + ")");
  AG_CHECK(c.clock_hz > 0, "GpuConfig.clock_hz must be positive (got " +
                               std::to_string(c.clock_hz) + ")");
}

GpuMachine::GpuMachine(GpuConfig config) : config_(config) {
  validate(config_);
  const u64 words_per_seg = config_.mem_seg_bytes / kWordBytes;
  if (std::has_single_bit(words_per_seg)) {
    seg_pow2_ = true;
    seg_shift_ = static_cast<u32>(std::countr_zero(words_per_seg));
  }
  if (std::has_single_bit(static_cast<u64>(config_.smem_banks))) {
    bank_mask_ = config_.smem_banks - 1;
  }
  if (std::has_single_bit(static_cast<u64>(config_.smem_words))) {
    smem_mask_ = config_.smem_words - 1;
  }
}

void GpuMachine::settle(Sm& sm, Cycle t) {
  if (t <= sm.acct_until) {
    return;  // already attributed (or a past-time event) — nothing to add
  }
  // Priority order mirrors the occupancy story: if any lane has a memory
  // round trip in flight, its warp is stalled on latency the scheduler
  // failed to cover with other warps (coalesce_wait — the serialized
  // transactions and the unhidden tail are the same shortage); otherwise
  // parked sync waiters, then barrier waiters, explain the silence; with no
  // warp holding work at all the slot is idle (launch ramp, admission,
  // drain, or an unused SM).
  CycleCat cat = CycleCat::kIdleNoThread;
  if (sm.acct_mem > 0) {
    cat = CycleCat::kCoalesceWait;
  } else if (sm.acct_sync > 0) {
    cat = CycleCat::kSyncBlocked;
  } else if (sm.acct_barrier > 0) {
    cat = CycleCat::kBarrier;
  }
  stats_.breakdown[cat] += t - sm.acct_until;
  sm.acct_until = t;
}

void GpuMachine::attribute_upto(Sm& sm, CycleCat cat, Cycle t) {
  if (t > sm.acct_until) {
    stats_.breakdown[cat] += t - sm.acct_until;
    sm.acct_until = t;
  }
}

void GpuMachine::acct_complete(u32 tid, Cycle now) {
  ThreadState* ts = threads_[tid];
  Sm& sm = sms_[ts->processor];
  settle(sm, now);
  switch (ts->pending.kind) {
    case OpKind::kLoad:
    case OpKind::kStore:
    case OpKind::kFetchAdd:
    case OpKind::kReadFF:
    case OpKind::kReadFE:
    case OpKind::kWriteEF:
      --sm.acct_mem;  // the round trip (or satisfied sync flight) landed
      break;
    case OpKind::kBarrier:
      --sm.acct_barrier;  // the release reached this lane
      break;
    default:
      break;  // compute occupancy: the slots were attributed at issue
  }
}

bool GpuMachine::smem_probe(Sm& sm, Addr addr, bool fill) {
  const usize slot = smem_mask_ != 0
                         ? static_cast<usize>(addr & smem_mask_)
                         : static_cast<usize>(addr % sm.smem_tags.size());
  if (sm.smem_tags[slot] == addr) {
    return true;
  }
  if (fill) {
    sm.smem_tags[slot] = addr;  // write-allocate (timing only, no coherence)
  }
  return false;
}

Cycle GpuMachine::simulate(std::vector<ThreadState*>& threads) {
  // --- reset region state -------------------------------------------------
  threads_ = threads;
  sms_.assign(config_.processors, Sm{});
  for (Sm& sm : sms_) {
    sm.smem_tags.assign(config_.smem_words, kNoTag);
  }
  sync_waiters_.clear();
  barrier_waiting_.clear();
  release_buf_.clear();
  barrier_max_arrival_ = 0;
  live_ = static_cast<i64>(threads_.size());
  region_end_ = 0;
  AG_CHECK(events_.empty(), "stale events from a previous region");

  // --- warp formation: consecutive thread ids share a warp; warps map
  // round-robin over SMs. Warps beyond the per-SM residency wait for a slot
  // (a CUDA grid launches more blocks than fit; the hardware streams them in
  // as resident blocks retire).
  const u32 n = static_cast<u32>(threads_.size());
  const u32 warp_count = (n + config_.warp_width - 1) / config_.warp_width;
  warps_.assign(warp_count, Warp{});
  // Flat ring arena: each SM gets two power-of-two windows (ready,
  // admission). Round-robin warp placement bounds both queues by the SM's
  // warp share, and a warp sits in at most one ring at a time, so the
  // windows never overflow. Grow-only, so repeated regions reuse the arena.
  const u32 cap = ring_capacity_for(
      (warp_count + config_.processors - 1) / config_.processors);
  const usize arena_need = static_cast<usize>(cap) * 2 * config_.processors;
  if (ring_arena_.size() < arena_need) {
    ring_arena_.resize(arena_need);
  }
  for (u32 p = 0; p < config_.processors; ++p) {
    u32* base = ring_arena_.data() + static_cast<usize>(p) * 2 * cap;
    sms_[p].ready_fifo.bind(base, cap);
    sms_[p].admission_queue.bind(base + cap, cap);
  }
  for (u32 wid = 0; wid < warp_count; ++wid) {
    Warp& w = warps_[wid];
    w.sm = wid % config_.processors;
    w.first = wid * config_.warp_width;
    w.last = std::min(w.first + config_.warp_width, n);
    w.live = w.last - w.first;
  }
  for (u32 wid = 0; wid < warp_count; ++wid) {
    Sm& sm = sms_[warps_[wid].sm];
    if (sm.resident < config_.warps_per_processor) {
      admit_warp(wid, config_.region_fork_cycles);
    } else {
      sm.admission_queue.push(wid);
    }
  }

  // --- main event loop ----------------------------------------------------
  if (prof_hook_ != nullptr) {
    run_events<true>();
  } else {
    run_events<false>();
  }

  AG_CHECK(live_ == 0,
           "GPU simulation deadlocked: lanes wait on full/empty tags or a "
           "barrier that can never be satisfied");
  // Close the accounting: attribute every SM's tail gap up to the region
  // end, so per-SM attribution totals exactly region_end_ and the region's
  // breakdown delta sums to processors x cycles.
  for (Sm& sm : sms_) {
    if (sm.acct_until > region_end_) {
      // Only reachable with barrier_overhead == 0: the last arrival's issue
      // slot extends one cycle past the release that ended the region. Clip
      // the overrun so attribution matches the region span exactly.
      stats_.breakdown[CycleCat::kIssued] -= sm.acct_until - region_end_;
      sm.acct_until = region_end_;
    }
    settle(sm, region_end_);
  }
  // threads_ holds raw pointers into the caller's region-local vector, which
  // dies when run_region() returns; drop them so hooks sampling between
  // regions never dereference freed ThreadStates. sms_ stays: the profiler's
  // on_prof_region_end still reads the issued gauges, and the next
  // simulate() reassigns it.
  threads_.clear();
  return region_end_;
}

template <bool Profiled>
void GpuMachine::run_events() {
  while (!events_.empty()) {
    const Event e = events_.pop();
    if constexpr (Profiled) {
      prof_hook_->on_advance(*this, e.time);
    }
    switch (static_cast<EventKind>(e.kind)) {
      case kIssue:
        handle_issue<Profiled>(static_cast<u32>(e.payload), e.time);
        break;
      case kComplete: {
        // Only satisfied full/empty flights complete one lane at a time now
        // (their issue interleaves wake_waiters pushes, so they cannot
        // batch); all of them held an in-flight slot.
        const auto tid = static_cast<u32>(e.payload);
        acct_complete(tid, e.time);
        --warps_[tid / config_.warp_width].in_flight;
        advance_thread(*threads_[tid]);
        post_advance(tid, e.time);
        break;
      }
      case kRetry:
        attempt_sync_retry(static_cast<u32>(e.payload), e.time);
        break;
      case kBatch: {
        // A whole compute or global-memory issue group lands together. The
        // group is exactly the warp's lanes still in kWaitMemory on this op
        // kind: other lanes either finished, parked on a tag/barrier
        // (different kind or status), or belong to a different group of this
        // round (groups are partitioned by kind). Ascending-tid replay
        // matches the order the per-lane events popped in.
        //
        // The per-lane acct_complete/maybe_enqueue_warp calls are hoisted
        // out of the loop: all group lanes share one SM and one op kind, so
        // after the first settle every later one is a no-op, and while the
        // loop runs w.in_flight > 0 (this round's groups land as a unit),
        // so only the final lane's enqueue attempt could ever fire — made
        // after the loop instead. on_finish stays inline: it retires warps
        // and admits queued ones, and that order is observable.
        const u32 wid = static_cast<u32>(e.payload >> 4);
        const auto kind = static_cast<OpKind>(e.payload & 0xF);
        Warp& w = warps_[wid];
        Sm& sm = sms_[w.sm];
        settle(sm, e.time);
        const bool mem = kind == OpKind::kLoad || kind == OpKind::kStore ||
                         kind == OpKind::kFetchAdd;
        for (u32 tid = w.first; tid < w.last; ++tid) {
          if (status_of(tid) != ThreadState::Status::kWaitMemory ||
              pending_kind(tid) != kind) {
            continue;
          }
          if (mem) {
            --sm.acct_mem;  // the lane's global round trip landed
          }
          --w.in_flight;
          advance_thread(*threads_[tid]);
          if (pending_kind(tid) == OpKind::kDone) {
            on_finish(tid, e.time);
          } else {
            set_status(tid, ThreadState::Status::kRunnable);
          }
        }
        maybe_enqueue_warp(wid, e.time);
        break;
      }
      case kRelease:
        // Barrier lanes never held an in-flight slot (they were masked).
        for (usize i = 0; i < release_buf_.size(); ++i) {
          const u32 tid = release_buf_[i];
          acct_complete(tid, e.time);
          advance_thread(*threads_[tid]);
          post_advance(tid, e.time);
        }
        release_buf_.clear();
        break;
    }
  }
}

void GpuMachine::admit_warp(u32 wid, Cycle now) {
  Warp& w = warps_[wid];
  w.resident = true;
  ++sms_[w.sm].resident;
  for (u32 tid = w.first; tid < w.last; ++tid) {
    threads_[tid]->processor = w.sm;
    advance_thread(*threads_[tid]);
    post_advance(tid, now);
  }
}

void GpuMachine::post_advance(u32 tid, Cycle now) {
  ThreadState* ts = threads_[tid];
  if (ts->pending.kind == OpKind::kDone) {
    on_finish(tid, now);
  } else {
    set_status(tid, ThreadState::Status::kRunnable);
    maybe_enqueue_warp(tid / config_.warp_width, now);
  }
}

void GpuMachine::maybe_enqueue_warp(u32 wid, Cycle now) {
  Warp& w = warps_[wid];
  // Lockstep readiness: every lane's flight must have landed (the warp waits
  // for its slowest lane) and at least one lane must hold an issuable op.
  // Lanes parked on a tag or a barrier are masked: they neither hold a
  // flight nor count as issuable.
  if (!w.resident || w.queued || w.in_flight > 0 || w.live == 0) {
    return;
  }
  bool any_runnable = false;
  for (u32 tid = w.first; tid < w.last; ++tid) {
    if (status_of(tid) == ThreadState::Status::kRunnable) {
      any_runnable = true;
      break;
    }
  }
  if (!any_runnable) {
    return;
  }
  w.queued = true;
  Sm& sm = sms_[w.sm];
  sm.ready_fifo.push(wid);
  if (!sm.issue_scheduled) {
    sm.issue_scheduled = true;
    events_.push(std::max(now, sm.clock), kIssue, w.sm);
  }
}

template <bool Profiled>
void GpuMachine::handle_issue(u32 sm_id, Cycle now) {
  Sm& sm = sms_[sm_id];
  if (sm.ready_fifo.empty()) {
    sm.issue_scheduled = false;
    return;
  }
  const u32 wid = sm.ready_fifo.pop();
  Warp& w = warps_[wid];
  w.queued = false;

  // Cycle accounting: classify the silent gap up to this issue round, then
  // claim the round's slots group by group below.
  settle(sm, now);

  runnable_lanes_.clear();
  for (u32 tid = w.first; tid < w.last; ++tid) {
    if (status_of(tid) == ThreadState::Status::kRunnable) {
      runnable_lanes_.push_back(tid);
    }
  }
  AG_CHECK(!runnable_lanes_.empty(), "warp queued with no runnable lane");

  // Divergence split: partition the runnable lanes by the operation they
  // present, in first-appearance order over ascending lane id. A convergent
  // warp forms one group; divergent paths issue serially, and every group
  // after the first charges its slots to kDivergenceSerial.
  std::array<OpKind, 8> kinds{};
  usize kind_count = 0;
  for (const u32 tid : runnable_lanes_) {
    const OpKind k = pending_kind(tid);
    bool seen = false;
    for (usize i = 0; i < kind_count; ++i) {
      if (kinds[i] == k) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      kinds[kind_count++] = k;
    }
  }

  Cycle t = now;
  for (usize gi = 0; gi < kind_count; ++gi) {
    const OpKind kind = kinds[gi];
    const CycleCat base_cat =
        gi == 0 ? CycleCat::kIssued : CycleCat::kDivergenceSerial;
    group_lanes_.clear();
    for (const u32 tid : runnable_lanes_) {
      if (pending_kind(tid) == kind) {
        group_lanes_.push_back(tid);
      }
    }
    const auto lanes = static_cast<i64>(group_lanes_.size());

    switch (kind) {
      case OpKind::kCompute: {
        // Lockstep ALU: the group occupies the SM for the longest lane's
        // slot count; every lane rides along for all of it.
        i64 v = 1;
        for (const u32 tid : group_lanes_) {
          v = std::max(v, std::max<i64>(threads_[tid]->pending.value, 1));
        }
        attribute_upto(sm, base_cat, t + v);
        stats_.instructions += v;
        sm.issued += v;
        for (const u32 tid : group_lanes_) {
          threads_[tid]->instructions += v;
          set_status(tid, ThreadState::Status::kWaitMemory);
          ++w.in_flight;
        }
        events_.push(t + v, kBatch,
                     (static_cast<u64>(wid) << 4) | static_cast<u64>(kind));
        t += v;
        break;
      }
      case OpKind::kLoad:
      case OpKind::kStore:
      case OpKind::kFetchAdd: {
        // Coalescing: loads/stores first probe the SM scratchpad (hits are
        // serviced there, bank conflicts serialize); the missing lanes'
        // addresses merge into aligned mem_seg_bytes segments — one global
        // transaction per distinct segment. Atomics bypass the scratchpad
        // and always serialize one transaction per lane.
        segments_.clear();
        bank_load_.assign(config_.smem_banks, 0);
        u32 smem_lanes = 0;
        u32 max_bank = 0;
        i64 atomic_lanes = 0;
        for (const u32 tid : group_lanes_) {
          const Addr addr = threads_[tid]->pending.addr;
          const bool smem_hit =
              kind != OpKind::kFetchAdd && smem_probe(sm, addr, /*fill=*/true);
          if (smem_hit) {
            ++smem_lanes;
            const usize bank =
                bank_mask_ != 0
                    ? static_cast<usize>(addr & bank_mask_)
                    : static_cast<usize>(addr % config_.smem_banks);
            max_bank = std::max(max_bank, ++bank_load_[bank]);
          } else if (kind == OpKind::kFetchAdd) {
            ++atomic_lanes;  // atomics never coalesce: one transaction each
          } else {
            // Distinct-segment collection. At most warp_width entries, so a
            // linear probe beats sort+unique; consecutive lanes usually share
            // a segment (coalesced stride), so check the newest entry first.
            const usize seg = segment_of(addr);
            if (segments_.empty() || segments_.back() != seg) {
              bool seen = false;
              for (const usize s : segments_) {
                if (s == seg) {
                  seen = true;
                  break;
                }
              }
              if (!seen) segments_.push_back(seg);
            }
          }
          if constexpr (Profiled) {
            prof_hook_->on_access(addr,
                                  smem_hit ? AccessClass::kL1Hit
                                  : kind == OpKind::kFetchAdd
                                      ? AccessClass::kRmw
                                      : AccessClass::kMemRef,
                                  kind != OpKind::kLoad);
          }
        }
        const i64 transactions = kind == OpKind::kFetchAdd
                                     ? atomic_lanes
                                     : static_cast<i64>(segments_.size());
        // One base slot, then the serialized extra transactions, then the
        // serialized extra bank passes.
        attribute_upto(sm, base_cat, t + 1);
        if (transactions > 1) {
          attribute_upto(sm, CycleCat::kCoalesceWait, t + transactions);
        }
        const i64 bank_extra =
            max_bank > 1 ? static_cast<i64>(max_bank) - 1 : 0;
        const Cycle occ = std::max<i64>(transactions, 1) + bank_extra;
        if (bank_extra > 0) {
          attribute_upto(sm, CycleCat::kBankConflict, t + occ);
        }
        stats_.instructions += 1;
        sm.issued += occ;
        stats_.memory_ops += lanes;
        if (kind == OpKind::kLoad) stats_.loads += lanes;
        if (kind == OpKind::kStore) stats_.stores += lanes;
        if (kind == OpKind::kFetchAdd) stats_.fetch_adds += lanes;
        stats_.l1_hits += smem_lanes;
        stats_.mem_fills += transactions;
        // Data effects apply at issue in lane order, so fetch-add sequences
        // within a warp are deterministic.
        for (const u32 tid : group_lanes_) {
          ThreadState* ts = threads_[tid];
          Operation& op = ts->pending;
          switch (kind) {
            case OpKind::kLoad:
              op.result = memory_.read(op.addr);
              break;
            case OpKind::kStore:
              memory_.write(op.addr, op.value);
              memory_.set_full(op.addr, true);
              break;
            default: {  // kFetchAdd
              const i64 old = memory_.read(op.addr);
              memory_.write(op.addr, old + op.value);
              op.result = old;
              break;
            }
          }
          ts->instructions += 1;
          ts->memory_ops += 1;
          set_status(tid, ThreadState::Status::kWaitMemory);
          ++w.in_flight;
          ++sm.acct_mem;  // round trip in flight until the batch completion
        }
        // The whole group lands together: its slowest lane's round trip.
        const Cycle done = t + occ +
                           (transactions > 0 ? config_.memory_latency
                                             : config_.smem_latency);
        events_.push(done, kBatch,
                     (static_cast<u64>(wid) << 4) | static_cast<u64>(kind));
        t += occ;
        break;
      }
      case OpKind::kReadFF:
      case OpKind::kReadFE:
      case OpKind::kWriteEF: {
        // Tag-bit sync maps to global atomics: one serialized transaction
        // per lane (never coalesced). Satisfied lanes ride the round trip;
        // unsatisfied lanes park masked and re-arbitrate when the tag flips.
        attribute_upto(sm, base_cat, t + 1);
        if (lanes > 1) {
          attribute_upto(sm, CycleCat::kCoalesceWait, t + lanes);
        }
        stats_.instructions += 1;
        sm.issued += lanes;
        stats_.memory_ops += lanes;
        stats_.sync_ops += lanes;
        const Cycle group_end = t + lanes;
        for (const u32 tid : group_lanes_) {
          ThreadState* ts = threads_[tid];
          Operation& op = ts->pending;
          ts->instructions += 1;
          ts->memory_ops += 1;
          if constexpr (Profiled) {
            prof_hook_->on_access(op.addr, AccessClass::kRmw,
                                  kind == OpKind::kWriteEF);
          }
          const bool full = memory_.full(op.addr);
          bool satisfied = false;
          switch (kind) {
            case OpKind::kReadFF:
              if (full) {
                op.result = memory_.read(op.addr);
                satisfied = true;
              }
              break;
            case OpKind::kReadFE:
              if (full) {
                op.result = memory_.read(op.addr);
                memory_.set_full(op.addr, false);
                satisfied = true;
              }
              break;
            default:  // kWriteEF
              if (!full) {
                memory_.write(op.addr, op.value);
                memory_.set_full(op.addr, true);
                satisfied = true;
              }
              break;
          }
          if (satisfied) {
            // A tag flip may unblock waiters of the opposite polarity.
            if (kind != OpKind::kReadFF) {
              wake_waiters(op.addr, group_end);
            }
            set_status(tid, ThreadState::Status::kWaitMemory);
            ++w.in_flight;
            ++sm.acct_mem;
            events_.push(group_end + config_.memory_latency, kComplete, tid);
          } else {
            set_status(tid, ThreadState::Status::kWaitSync);
            sync_waiters_[op.addr].push_back(tid);
            ++sm.acct_sync;  // parked and masked until a retry succeeds
          }
        }
        t = group_end;
        break;
      }
      case OpKind::kBarrier: {
        attribute_upto(sm, base_cat, t + 1);
        stats_.instructions += 1;
        sm.issued += 1;
        for (const u32 tid : group_lanes_) {
          threads_[tid]->instructions += 1;
          ++sm.acct_barrier;  // parked until the release kComplete
          barrier_arrive(tid, t + 1);
        }
        t += 1;
        break;
      }
      case OpKind::kNone:
      case OpKind::kDone:
        AG_CHECK(false, "invalid operation reached the issue stage");
    }
  }

  sm.clock = t;  // the SM's issue/LSU pipe is occupied for the whole round
  if (!sm.ready_fifo.empty()) {
    events_.push(sm.clock, kIssue, sm_id);
  } else {
    sm.issue_scheduled = false;
  }
}

void GpuMachine::attempt_sync_retry(u32 tid, Cycle now) {
  ThreadState* ts = threads_[tid];
  Operation& op = ts->pending;
  Sm& sm = sms_[ts->processor];
  if (prof_hook_ != nullptr) {
    // Every retry probes the word again — retry traffic shows up in the
    // heatmap, exactly as on the MTA.
    prof_hook_->on_access(op.addr, AccessClass::kRmw,
                          op.kind == OpKind::kWriteEF);
  }
  const bool full = memory_.full(op.addr);
  bool satisfied = false;
  switch (op.kind) {
    case OpKind::kReadFF:
      if (full) {
        op.result = memory_.read(op.addr);
        satisfied = true;
      }
      break;
    case OpKind::kReadFE:
      if (full) {
        op.result = memory_.read(op.addr);
        memory_.set_full(op.addr, false);
        satisfied = true;
      }
      break;
    case OpKind::kWriteEF:
      if (!full) {
        memory_.write(op.addr, op.value);
        memory_.set_full(op.addr, true);
        satisfied = true;
      }
      break;
    default:
      AG_CHECK(false, "attempt_sync_retry() on a non-sync op");
  }

  if (satisfied) {
    // Classify the parked gap before the lane moves on: sync -> mem at the
    // wake time, then the atomic's round trip.
    settle(sm, now);
    --sm.acct_sync;
    ++sm.acct_mem;
    if (op.kind != OpKind::kReadFF) {
      wake_waiters(op.addr, now);
    }
    set_status(tid, ThreadState::Status::kWaitMemory);
    ++warps_[tid / config_.warp_width].in_flight;
    events_.push(now + config_.memory_latency, kComplete, tid);
  } else {
    sync_waiters_[op.addr].push_back(tid);
  }
}

void GpuMachine::wake_waiters(Addr addr, Cycle now) {
  const auto it = sync_waiters_.find(addr);
  if (it == sync_waiters_.end() || it->second.empty()) {
    return;
  }
  // Re-arbitrate every waiter in FIFO order; each recheck is another atomic
  // probe — the retry traffic that makes hotspots hurt.
  std::deque<u32> woken = std::move(it->second);
  sync_waiters_.erase(it);
  for (const u32 tid : woken) {
    stats_.sync_retries += 1;
    events_.push(now, kRetry, tid);
  }
}

void GpuMachine::barrier_arrive(u32 tid, Cycle now) {
  set_status(tid, ThreadState::Status::kWaitBarrier);
  barrier_waiting_.push_back(tid);
  barrier_max_arrival_ = std::max(barrier_max_arrival_, now);
  maybe_release_barrier();
}

void GpuMachine::maybe_release_barrier() {
  if (static_cast<i64>(barrier_waiting_.size()) != live_ || live_ == 0) {
    return;
  }
  const Cycle release = barrier_max_arrival_ + config_.barrier_overhead;
  // Every live lane is parked here, so at most one release is ever in
  // flight: resume the whole episode with a single kRelease event instead of
  // one queue entry per lane. run_events() replays release_buf_ in arrival
  // order, which is exactly the order the per-lane events popped in.
  AG_DCHECK(release_buf_.empty(), "overlapping barrier releases");
  for (const u32 tid : barrier_waiting_) {
    threads_[tid]->pending.result = 0;
    set_status(tid, ThreadState::Status::kWaitMemory);
  }
  release_buf_.swap(barrier_waiting_);  // leaves barrier_waiting_ empty
  events_.push(release, kRelease, 0);
  barrier_max_arrival_ = 0;
  stats_.barriers += 1;
  // Settle the accounting up to the release before observers snapshot
  // stats(): every live lane is parked here (nothing is in flight), so the
  // per-phase breakdown deltas slice exactly at barrier boundaries. The
  // release event's completions settle no-op and drop the barrier counters.
  for (Sm& sm : sms_) {
    settle(sm, release);
  }
  notify_barrier_release(release);
}

std::vector<ProfGaugeInfo> GpuMachine::prof_gauge_info() const {
  std::vector<ProfGaugeInfo> info;
  info.reserve(config_.processors + 3);
  for (u32 p = 0; p < config_.processors; ++p) {
    info.push_back({"p" + std::to_string(p) + ".issued", /*cumulative=*/true});
  }
  info.push_back({"warps_ready", /*cumulative=*/false});
  info.push_back({"warps_blocked", /*cumulative=*/false});
  info.push_back({"mem_outstanding", /*cumulative=*/false});
  return info;
}

void GpuMachine::sample_prof_gauges(i64* out) const {
  // Gauge slots follow prof_gauge_info(): config_.processors issued
  // counters, then ready/blocked/outstanding. Before the first region sms_
  // is still empty; pad the per-SM slots so the layout stays aligned (the
  // machine is idle then, so zero is also the true value).
  i64 ready = 0;
  i64 resident = 0;
  i64 outstanding = 0;
  usize i = 0;
  for (u32 p = 0; p < config_.processors; ++p) {
    if (p < sms_.size()) {
      const Sm& sm = sms_[p];
      out[i++] = sm.issued;
      ready += static_cast<i64>(sm.ready_fifo.size());
      resident += sm.resident;
      // acct_mem counts exactly the lanes in kWaitMemory on a global or
      // satisfied-sync round trip (compute occupancy and barrier releases
      // are charged elsewhere), so summing it replaces the per-thread walk.
      outstanding += sm.acct_mem;
    } else {
      out[i++] = 0;
    }
  }
  out[i++] = ready;
  out[i++] = resident - ready;  // warps holding a slot but not issuable
  out[i] = outstanding;
}

void GpuMachine::on_finish(u32 tid, Cycle now) {
  set_status(tid, ThreadState::Status::kFinished);
  --live_;
  region_end_ = std::max(region_end_, now);
  Warp& w = warps_[tid / config_.warp_width];
  --w.live;
  if (w.live == 0 && w.resident) {
    // The whole warp retired: free its residency slot and stream in the
    // next queued warp (block-at-a-time admission, like the MTA's streams).
    w.resident = false;
    Sm& sm = sms_[w.sm];
    --sm.resident;
    if (!sm.admission_queue.empty()) {
      admit_warp(sm.admission_queue.pop(), now);
    }
  } else {
    // This lane's completion may have been the flight the rest of the warp
    // was lockstep-waiting on; the surviving runnable lanes still need an
    // issue slot.
    maybe_enqueue_warp(tid / config_.warp_width, now);
  }
  // A finished lane no longer participates in barriers.
  maybe_release_barrier();
}

}  // namespace archgraph::sim
