// The simulated-thread coroutine type and its operation awaitables.
//
// A kernel is an ordinary C++20 coroutine:
//
//   SimThread worker(Ctx ctx, Args...) {
//     i64 v = co_await ctx.load(a);     // 1 issue slot + memory latency
//     co_await ctx.compute(3);          // 3 ALU instructions
//     co_await ctx.store(b, v + 1);     // 1 issue slot + memory latency
//   }
//
// Between co_awaits the coroutine runs host-native at zero simulated cost, so
// by convention every kernel charges its ALU work explicitly with compute().
// The same kernel runs unchanged on the MTA and SMP machine models — only the
// per-operation timing differs. This is the machine-neutral program
// representation the whole reproduction rests on.
#pragma once

#include <coroutine>
#include <exception>

#include "common/types.hpp"
#include "sim/types.hpp"

namespace archgraph::sim {

/// Per-thread bookkeeping owned by the machine. The coroutine communicates
/// with its machine exclusively through `pending`.
struct ThreadState {
  enum class Status : u8 {
    kRunnable,    // has a pending op awaiting issue
    kWaitMemory,  // op in flight
    kWaitSync,    // blocked on a full/empty tag
    kWaitBarrier,
    kFinished,
  };

  std::coroutine_handle<> handle;
  Operation pending;
  Status status = Status::kRunnable;
  std::exception_ptr error;

  u32 id = 0;         // dense thread index within the region
  u32 processor = 0;  // assigned by the machine at admission

  // Per-thread statistics (aggregated into machine stats at region end).
  i64 instructions = 0;
  i64 memory_ops = 0;

  /// Resumes the coroutine until its next operation (or completion).
  /// Afterwards `pending.kind` is the new op, or kDone.
  void advance();
};

/// Coroutine return object. The machine takes ownership of the handle at
/// spawn; a SimThread that is never adopted destroys its frame on destruction.
class SimThread {
 public:
  struct promise_type {
    ThreadState* state = nullptr;

    SimThread get_return_object() {
      return SimThread{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept {
      if (state != nullptr) {
        state->pending = Operation{.kind = OpKind::kDone};
      }
      return {};
    }
    void return_void() {}
    void unhandled_exception() {
      if (state != nullptr) {
        state->error = std::current_exception();
        state->pending = Operation{.kind = OpKind::kDone};
      } else {
        throw;  // no machine attached: propagate immediately
      }
    }
  };

  SimThread() = default;
  explicit SimThread(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  SimThread(SimThread&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  SimThread& operator=(SimThread&& other) noexcept;
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;
  ~SimThread();

  /// Transfers the frame to `state` (machine adoption): the promise learns
  /// its ThreadState and this object releases ownership.
  std::coroutine_handle<> bind(ThreadState* state);

 private:
  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable returned by every Ctx operation.
struct OpAwaiter {
  ThreadState* ts;
  Operation op;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) noexcept { ts->pending = op; }
  i64 await_resume() const noexcept { return ts->pending.result; }
};

/// Thread-side handle used inside kernels to issue operations.
class Ctx {
 public:
  Ctx() = default;
  explicit Ctx(ThreadState* ts) : ts_(ts) {}

  /// Dense id of this thread within its region (0-based spawn order).
  u32 thread_id() const { return ts_->id; }

  OpAwaiter load(Addr a) const {
    return {ts_, {.kind = OpKind::kLoad, .addr = a}};
  }
  OpAwaiter store(Addr a, i64 v) const {
    return {ts_, {.kind = OpKind::kStore, .addr = a, .value = v}};
  }
  /// MTA readff: wait for full, read, leave full.
  OpAwaiter read_ff(Addr a) const {
    return {ts_, {.kind = OpKind::kReadFF, .addr = a}};
  }
  /// MTA readfe: wait for full, read, set empty (consumes the value).
  OpAwaiter read_fe(Addr a) const {
    return {ts_, {.kind = OpKind::kReadFE, .addr = a}};
  }
  /// MTA writeef: wait for empty, write, set full.
  OpAwaiter write_ef(Addr a, i64 v) const {
    return {ts_, {.kind = OpKind::kWriteEF, .addr = a, .value = v}};
  }
  /// int_fetch_add: atomic add at the bank; returns the old value.
  OpAwaiter fetch_add(Addr a, i64 delta) const {
    return {ts_, {.kind = OpKind::kFetchAdd, .addr = a, .value = delta}};
  }
  /// `slots` ALU instructions (each one issue slot / cycle).
  OpAwaiter compute(i64 slots = 1) const {
    return {ts_, {.kind = OpKind::kCompute, .value = slots}};
  }
  /// Region-wide barrier over all still-live threads.
  OpAwaiter barrier() const { return {ts_, {.kind = OpKind::kBarrier}}; }

 private:
  ThreadState* ts_ = nullptr;
};

}  // namespace archgraph::sim
