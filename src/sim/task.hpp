// The simulated-thread coroutine type and its operation awaitables.
//
// A kernel is an ordinary C++20 coroutine:
//
//   SimThread worker(Ctx ctx, Args...) {
//     i64 v = co_await ctx.load(a);     // 1 issue slot + memory latency
//     co_await ctx.compute(3);          // 3 ALU instructions
//     co_await ctx.store(b, v + 1);     // 1 issue slot + memory latency
//   }
//
// Between co_awaits the coroutine runs host-native at zero simulated cost, so
// by convention every kernel charges its ALU work explicitly with compute().
// The same kernel runs unchanged on the MTA and SMP machine models — only the
// per-operation timing differs. This is the machine-neutral program
// representation the whole reproduction rests on.
//
// Kernels can factor shared loop shapes into SimTask sub-coroutines (see
// core/kernels/sim_par.hpp): `co_await helper(ctx, ...)` suspends the caller
// until the helper finishes, and every op the helper issues is charged to the
// calling thread. The nesting itself costs zero simulated cycles.
#pragma once

#include <coroutine>
#include <exception>

#include "common/types.hpp"
#include "sim/frame_pool.hpp"
#include "sim/types.hpp"

namespace archgraph::sim {

/// Per-thread bookkeeping owned by the machine. The coroutine communicates
/// with its machine exclusively through `pending`. Scheduling state the
/// machines' event loops scan (status, pending op kind) lives in the
/// Machine's structure-of-arrays mirrors, not here: this block holds only
/// what the kernel side of the seam needs.
struct ThreadState {
  enum class Status : u8 {
    kRunnable,    // has a pending op awaiting issue
    kWaitMemory,  // op in flight
    kWaitSync,    // blocked on a full/empty tag
    kWaitBarrier,
    kFinished,
  };

  /// Innermost active coroutine: the frame advance() must resume next. Every
  /// OpAwaiter re-points this at suspension, so nested SimTask helpers are
  /// resumed directly without re-walking the await chain.
  std::coroutine_handle<> handle;
  /// Outermost (kernel) frame; owns the whole nest. Cleanup destroys this one
  /// handle — SimTask members in parent frames cascade to child frames.
  std::coroutine_handle<> root;
  Operation pending;
  std::exception_ptr error;

  u32 id = 0;         // dense thread index within the region
  u32 processor = 0;  // assigned by the machine at admission

  // Per-thread statistics (aggregated into machine stats at region end).
  i64 instructions = 0;
  i64 memory_ops = 0;

  /// Resumes the coroutine until its next operation (or completion).
  /// Afterwards `pending.kind` is the new op, or kDone.
  void advance();
};

/// Coroutine return object. The machine takes ownership of the handle at
/// spawn; a SimThread that is never adopted destroys its frame on destruction.
class SimThread {
 public:
  struct promise_type {
    ThreadState* state = nullptr;

    // Frames come from the thread-local pool (frame_pool.hpp): fine-grain
    // kernels spawn enough short-lived threads that malloc'ing every frame
    // is a first-order host cost.
    static void* operator new(std::size_t size) {
      return detail::frame_pool().alloc(size);
    }
    static void operator delete(void* p, std::size_t size) noexcept {
      detail::frame_pool().free(p, size);
    }

    SimThread get_return_object() {
      return SimThread{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept {
      if (state != nullptr) {
        state->pending = Operation{.kind = OpKind::kDone};
      }
      return {};
    }
    void return_void() {}
    void unhandled_exception() {
      if (state != nullptr) {
        state->error = std::current_exception();
        state->pending = Operation{.kind = OpKind::kDone};
      } else {
        throw;  // no machine attached: propagate immediately
      }
    }
  };

  SimThread() = default;
  explicit SimThread(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  SimThread(SimThread&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  SimThread& operator=(SimThread&& other) noexcept;
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;
  ~SimThread();

  /// Transfers the frame to `state` (machine adoption): the promise learns
  /// its ThreadState and this object releases ownership.
  std::coroutine_handle<> bind(ThreadState* state);

 private:
  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable returned by every Ctx operation. Suspension records both the op
/// and the suspending frame, so advance() resumes the innermost coroutine of
/// a SimTask nest directly.
struct OpAwaiter {
  ThreadState* ts;
  Operation op;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    ts->pending = op;
    ts->handle = h;
  }
  i64 await_resume() const noexcept { return ts->pending.result; }
};

/// A nested simulated sub-coroutine: lets kernels factor shared loop shapes
/// (chunk claiming, block scans) into helpers without changing the op stream
/// the machine sees. `co_await some_task(ctx, ...)` runs the helper on the
/// calling thread; suspension and cost accounting flow through the caller's
/// ThreadState, and control returns to the caller via symmetric transfer when
/// the helper completes. The nesting itself is free in simulated time.
///
/// Lifetime rule: a SimTask must be awaited immediately by the coroutine that
/// created it (`co_await helper(...)`), so its frame is owned by an object in
/// the caller's frame for the whole await. Any lambda a helper captures must
/// be a named parameter of the helper (stored in its frame), never a
/// temporary that dies at the call's semicolon.
class SimTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;
    i64 value = 0;

    // SimTask helpers are created and destroyed once per chunk claim, so
    // their frames recycle through the same pool as kernel threads.
    static void* operator new(std::size_t size) {
      return detail::frame_pool().alloc(size);
    }
    static void operator delete(void* p, std::size_t size) noexcept {
      detail::frame_pool().free(p, size);
    }

    SimTask get_return_object() {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        return h.promise().continuation;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(i64 v) noexcept { value = v; }
    void unhandled_exception() { error = std::current_exception(); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  SimTask(SimTask&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  ~SimTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer into the helper's body
  }
  i64 await_resume() const {
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    return handle_.promise().value;
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

/// Thread-side handle used inside kernels to issue operations.
class Ctx {
 public:
  Ctx() = default;
  explicit Ctx(ThreadState* ts) : ts_(ts) {}

  /// Dense id of this thread within its region (0-based spawn order).
  u32 thread_id() const { return ts_->id; }

  OpAwaiter load(Addr a) const {
    return {ts_, {.kind = OpKind::kLoad, .addr = a}};
  }
  OpAwaiter store(Addr a, i64 v) const {
    return {ts_, {.kind = OpKind::kStore, .addr = a, .value = v}};
  }
  /// MTA readff: wait for full, read, leave full.
  OpAwaiter read_ff(Addr a) const {
    return {ts_, {.kind = OpKind::kReadFF, .addr = a}};
  }
  /// MTA readfe: wait for full, read, set empty (consumes the value).
  OpAwaiter read_fe(Addr a) const {
    return {ts_, {.kind = OpKind::kReadFE, .addr = a}};
  }
  /// MTA writeef: wait for empty, write, set full.
  OpAwaiter write_ef(Addr a, i64 v) const {
    return {ts_, {.kind = OpKind::kWriteEF, .addr = a, .value = v}};
  }
  /// int_fetch_add: atomic add at the bank; returns the old value.
  OpAwaiter fetch_add(Addr a, i64 delta) const {
    return {ts_, {.kind = OpKind::kFetchAdd, .addr = a, .value = delta}};
  }
  /// `slots` ALU instructions (each one issue slot / cycle).
  OpAwaiter compute(i64 slots = 1) const {
    return {ts_, {.kind = OpKind::kCompute, .value = slots}};
  }
  /// Region-wide barrier over all still-live threads.
  OpAwaiter barrier() const { return {ts_, {.kind = OpKind::kBarrier}}; }

 private:
  ThreadState* ts_ = nullptr;
};

}  // namespace archgraph::sim
