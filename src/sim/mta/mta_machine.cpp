#include "sim/mta/mta_machine.hpp"

#include <algorithm>

#include "common/prng.hpp"

namespace archgraph::sim {

void validate(const MtaConfig& c) {
  AG_CHECK(c.processors >= 1, "MtaConfig.processors must be >= 1 (got " +
                                  std::to_string(c.processors) + ")");
  AG_CHECK(c.streams_per_processor >= 1,
           "MtaConfig.streams_per_processor must be >= 1 (got " +
               std::to_string(c.streams_per_processor) + ")");
  AG_CHECK(c.memory_latency >= 2,
           "MtaConfig.memory_latency must cover the round trip (>= 2, got " +
               std::to_string(c.memory_latency) + ")");
  AG_CHECK(c.banks_per_processor >= 1,
           "MtaConfig.banks_per_processor must be >= 1 (got " +
               std::to_string(c.banks_per_processor) + ")");
  AG_CHECK(c.region_fork_cycles >= 0,
           "MtaConfig.region_fork_cycles must be >= 0 (got " +
               std::to_string(c.region_fork_cycles) + ")");
  AG_CHECK(c.barrier_overhead >= 0,
           "MtaConfig.barrier_overhead must be >= 0 (got " +
               std::to_string(c.barrier_overhead) + ")");
  AG_CHECK(c.nonuniform_extra >= 0,
           "MtaConfig.nonuniform_extra must be >= 0 (got " +
               std::to_string(c.nonuniform_extra) + ")");
  AG_CHECK(c.clock_hz > 0, "MtaConfig.clock_hz must be positive (got " +
                               std::to_string(c.clock_hz) + ")");
}

MtaMachine::MtaMachine(MtaConfig config) : config_(config) {
  validate(config_);
  net_half_ = config_.memory_latency / 2;
}

void MtaMachine::settle(Processor& proc, Cycle t) {
  if (t <= proc.acct_until) {
    return;  // already attributed (or a past-time event) — nothing to add
  }
  // Priority order mirrors the paper's latency-tolerance story: if any
  // stream has a memory round trip in flight the processor is covering
  // latency it failed to hide (no_ready_stream); otherwise parked sync
  // waiters, then barrier waiters, explain the silence; with no stream
  // holding work at all the slot is idle (fork ramp, admission, drain, or
  // an unused processor).
  CycleCat cat = CycleCat::kIdleNoThread;
  if (proc.acct_mem > 0) {
    cat = CycleCat::kNoReadyStream;
  } else if (proc.acct_sync > 0) {
    cat = CycleCat::kSyncBlocked;
  } else if (proc.acct_barrier > 0) {
    cat = CycleCat::kBarrier;
  }
  stats_.breakdown[cat] += t - proc.acct_until;
  proc.acct_until = t;
}

void MtaMachine::acct_issue(Processor& proc) {
  if (proc.clock > proc.acct_until) {
    stats_.breakdown[CycleCat::kIssued] += proc.clock - proc.acct_until;
    proc.acct_until = proc.clock;
  }
}

void MtaMachine::acct_complete(u32 tid, Cycle now) {
  ThreadState* ts = threads_[tid];
  Processor& proc = procs_[ts->processor];
  settle(proc, now);
  switch (ts->pending.kind) {
    case OpKind::kLoad:
    case OpKind::kStore:
    case OpKind::kFetchAdd:
    case OpKind::kReadFF:
    case OpKind::kReadFE:
    case OpKind::kWriteEF:
      --proc.acct_mem;  // the round trip (or satisfied sync flight) landed
      break;
    case OpKind::kBarrier:
      --proc.acct_barrier;  // the release reached this stream
      break;
    default:
      break;  // compute occupancy: the slots were attributed at issue
  }
}

usize MtaMachine::bank_of(Addr addr) const {
  const usize banks = bank_free_.size();
  const u64 key = config_.hash_addresses ? hash64(addr) : addr;
  // Banks are procs x banks_per_processor; when that product is a power of
  // two (every stock preset) the modulo is a mask — the hot path runs one
  // integer divide per memory op otherwise.
  if ((banks & (banks - 1)) == 0) {
    return static_cast<usize>(key & (banks - 1));
  }
  return static_cast<usize>(key % banks);
}

Cycle MtaMachine::simulate(std::vector<ThreadState*>& threads) {
  // --- reset region state -------------------------------------------------
  threads_ = threads;
  procs_.assign(config_.processors, Processor{});
  // Flat ring arena: each processor gets two power-of-two windows (ready,
  // admission). Round-robin admission bounds both queues by the processor's
  // thread share, and a thread is enqueued at most once at a time, so the
  // windows never overflow. Growth (never shrink) keeps the arena warm
  // across a sweep's repeated regions — zero steady-state allocation.
  const u32 cap = ring_capacity_for(
      (threads_.size() + config_.processors - 1) / config_.processors);
  const usize arena_need = static_cast<usize>(cap) * 2 * config_.processors;
  if (ring_arena_.size() < arena_need) {
    ring_arena_.resize(arena_need);
  }
  for (u32 p = 0; p < config_.processors; ++p) {
    u32* base = ring_arena_.data() + static_cast<usize>(p) * 2 * cap;
    procs_[p].ready_fifo.bind(base, cap);
    procs_[p].admission_queue.bind(base + cap, cap);
  }
  bank_free_.assign(
      static_cast<usize>(config_.banks_per_processor) * config_.processors, 0);
  sync_waiters_.clear();
  barrier_waiting_.clear();
  release_buf_.clear();
  barrier_max_arrival_ = 0;
  live_ = static_cast<i64>(threads_.size());
  region_end_ = 0;
  AG_CHECK(events_.empty(), "stale events from a previous region");

  // --- admission: map threads to processors round-robin; threams beyond the
  // stream count per processor wait for a slot (the MTA runtime maps threads
  // to streams as they free up).
  for (u32 tid = 0; tid < threads_.size(); ++tid) {
    ThreadState* ts = threads_[tid];
    ts->processor = tid % config_.processors;
    Processor& proc = procs_[ts->processor];
    if (proc.streams_in_use < config_.streams_per_processor) {
      ++proc.streams_in_use;
      advance_thread(*ts);
      post_advance(tid, config_.region_fork_cycles);
    } else {
      proc.admission_queue.push(tid);
    }
  }

  // --- main event loop ----------------------------------------------------
  if (prof_hook_ != nullptr) {
    run_events<true>();
  } else {
    run_events<false>();
  }

  AG_CHECK(live_ == 0,
           "MTA simulation deadlocked: threads wait on full/empty tags or a "
           "barrier that can never be satisfied");
  // Close the accounting: attribute every processor's tail gap up to the
  // region end, so per-processor attribution totals exactly region_end_ and
  // the region's breakdown delta sums to processors x cycles.
  for (Processor& proc : procs_) {
    if (proc.acct_until > region_end_) {
      // Only reachable with barrier_overhead == 0: the last arrival's issue
      // slot extends one cycle past the release that ended the region. Clip
      // the overrun so attribution matches the region span exactly.
      stats_.breakdown[CycleCat::kIssued] -= proc.acct_until - region_end_;
      proc.acct_until = region_end_;
    }
    settle(proc, region_end_);
  }
  // threads_ holds raw pointers into the caller's region-local vector, which
  // dies when run_region() returns; drop them so hooks sampling between
  // regions (the next region's on_prof_region_begin) never dereference freed
  // ThreadStates. procs_ stays: on_prof_region_end still reads the issued
  // gauges, and the next simulate() reassigns it.
  threads_.clear();
  return region_end_;
}

template <bool Profiled>
void MtaMachine::run_events() {
  while (!events_.empty()) {
    const Event e = events_.pop();
    if constexpr (Profiled) {
      prof_hook_->on_advance(*this, e.time);
    }
    switch (static_cast<EventKind>(e.kind)) {
      case kReady:
        on_ready(static_cast<u32>(e.payload), e.time);
        break;
      case kIssue:
        handle_issue(static_cast<u32>(e.payload), e.time);
        break;
      case kComplete: {
        const auto tid = static_cast<u32>(e.payload);
        acct_complete(tid, e.time);
        advance_thread(*threads_[tid]);
        post_advance(tid, e.time);
        break;
      }
      case kRetry:
        attempt_sync(static_cast<u32>(e.payload), e.time,
                     /*first_attempt=*/false);
        break;
      case kRelease:
        // A barrier-release storm batched into one event: resume every
        // parked stream in arrival order. The per-thread kComplete events
        // this replaces were pushed back-to-back (consecutive seqs at one
        // time), so nothing could ever pop between them — processing the
        // whole storm in one handler is pop-order-identical.
        for (usize i = 0; i < release_buf_.size(); ++i) {
          const u32 tid = release_buf_[i];
          acct_complete(tid, e.time);
          advance_thread(*threads_[tid]);
          post_advance(tid, e.time);
        }
        release_buf_.clear();
        break;
    }
  }
}

void MtaMachine::post_advance(u32 tid, Cycle now) {
  ThreadState* ts = threads_[tid];
  if (ts->pending.kind == OpKind::kDone) {
    on_finish(tid, now);
  } else {
    set_status(tid, ThreadState::Status::kRunnable);
    events_.push(now, kReady, tid);
  }
}

void MtaMachine::on_ready(u32 tid, Cycle now) {
  ThreadState* ts = threads_[tid];
  Processor& proc = procs_[ts->processor];
  proc.ready_fifo.push(tid);
  if (!proc.issue_scheduled) {
    proc.issue_scheduled = true;
    events_.push(std::max(now, proc.clock), kIssue, ts->processor);
  }
}

void MtaMachine::handle_issue(u32 proc_id, Cycle now) {
  Processor& proc = procs_[proc_id];
  if (proc.ready_fifo.empty()) {
    proc.issue_scheduled = false;
    return;
  }
  const u32 tid = proc.ready_fifo.pop();
  ThreadState* ts = threads_[tid];
  Operation& op = ts->pending;

  // Cycle accounting: classify the silent gap up to this issue, then claim
  // the issue slot(s) — [now, proc.clock) is attributed as issued below.
  settle(proc, now);

  switch (op.kind) {
    case OpKind::kCompute: {
      const i64 slots = std::max<i64>(op.value, 1);
      proc.clock = now + slots;
      stats_.instructions += slots;
      proc.issued += slots;
      ts->instructions += slots;
      acct_issue(proc);
      set_status(tid, ThreadState::Status::kWaitMemory);  // held until t+slots
      events_.push(proc.clock, kComplete, tid);
      break;
    }
    case OpKind::kLoad:
    case OpKind::kStore:
    case OpKind::kFetchAdd: {
      proc.clock = now + 1;
      stats_.instructions += 1;
      stats_.memory_ops += 1;
      proc.issued += 1;
      ts->instructions += 1;
      ts->memory_ops += 1;
      acct_issue(proc);
      ++proc.acct_mem;  // round trip in flight until kComplete
      if (op.kind == OpKind::kLoad) ++stats_.loads;
      if (op.kind == OpKind::kStore) ++stats_.stores;
      if (op.kind == OpKind::kFetchAdd) ++stats_.fetch_adds;
      set_status(tid, ThreadState::Status::kWaitMemory);
      events_.push(service_memory(op, now, ts->processor), kComplete, tid);
      break;
    }
    case OpKind::kReadFF:
    case OpKind::kReadFE:
    case OpKind::kWriteEF: {
      proc.clock = now + 1;
      stats_.instructions += 1;
      stats_.memory_ops += 1;
      stats_.sync_ops += 1;
      proc.issued += 1;
      ts->instructions += 1;
      ts->memory_ops += 1;
      acct_issue(proc);
      set_status(tid, ThreadState::Status::kWaitMemory);
      attempt_sync(tid, now + 1 + net_half_, /*first_attempt=*/true);
      break;
    }
    case OpKind::kBarrier: {
      proc.clock = now + 1;
      stats_.instructions += 1;
      proc.issued += 1;
      ts->instructions += 1;
      acct_issue(proc);
      ++proc.acct_barrier;  // parked until the release kComplete
      barrier_arrive(tid, now);
      break;
    }
    case OpKind::kNone:
    case OpKind::kDone:
      AG_CHECK(false, "invalid operation reached the issue stage");
  }

  if (!proc.ready_fifo.empty()) {
    events_.push(proc.clock, kIssue, proc_id);
  } else {
    proc.issue_scheduled = false;
  }
}

Cycle MtaMachine::numa_penalty(usize bank, u32 proc) const {
  if (config_.nonuniform_extra == 0) {
    return 0;
  }
  const u32 owner =
      static_cast<u32>(bank / config_.banks_per_processor);
  return owner == proc ? 0 : config_.nonuniform_extra / 2;  // per direction
}

Cycle MtaMachine::service_memory(Operation& op, Cycle issue_time, u32 proc) {
  if (prof_hook_ != nullptr) {
    prof_hook_->on_access(op.addr,
                          op.kind == OpKind::kFetchAdd ? AccessClass::kRmw
                                                       : AccessClass::kMemRef,
                          op.kind != OpKind::kLoad);
  }
  const usize bank = bank_of(op.addr);
  const Cycle extra = numa_penalty(bank, proc);
  const Cycle arrival = issue_time + 1 + net_half_ + extra;
  const Cycle start = std::max(arrival, bank_free_[bank]);
  bank_free_[bank] = start + 1;
  // Data effect applied at service (event order == issue order, so
  // fetch-add sequences are deterministic).
  switch (op.kind) {
    case OpKind::kLoad:
      op.result = memory_.read(op.addr);
      break;
    case OpKind::kStore:
      memory_.write(op.addr, op.value);
      memory_.set_full(op.addr, true);
      break;
    case OpKind::kFetchAdd: {
      const i64 old = memory_.read(op.addr);
      memory_.write(op.addr, old + op.value);
      op.result = old;
      break;
    }
    default:
      AG_CHECK(false, "service_memory() on a non-memory op");
  }
  return start + 1 + net_half_ + extra;
}

void MtaMachine::attempt_sync(u32 tid, Cycle arrival, bool first_attempt) {
  ThreadState* ts = threads_[tid];
  Operation& op = ts->pending;
  if (prof_hook_ != nullptr) {
    // Every probe (first attempt and each retry) consumes a bank cycle, so
    // each one counts as an access — retry traffic shows up in the heatmap.
    prof_hook_->on_access(op.addr, AccessClass::kRmw,
                          op.kind == OpKind::kWriteEF);
  }
  const usize bank = bank_of(op.addr);
  const Cycle extra = numa_penalty(bank, ts->processor);
  const Cycle start = std::max(arrival + extra, bank_free_[bank]);
  bank_free_[bank] = start + 1;

  const bool full = memory_.full(op.addr);
  bool satisfied = false;
  switch (op.kind) {
    case OpKind::kReadFF:
      if (full) {
        op.result = memory_.read(op.addr);
        satisfied = true;
      }
      break;
    case OpKind::kReadFE:
      if (full) {
        op.result = memory_.read(op.addr);
        memory_.set_full(op.addr, false);
        satisfied = true;
      }
      break;
    case OpKind::kWriteEF:
      if (!full) {
        memory_.write(op.addr, op.value);
        memory_.set_full(op.addr, true);
        satisfied = true;
      }
      break;
    default:
      AG_CHECK(false, "attempt_sync() on a non-sync op");
  }

  // Cycle accounting. A sync op's flight (issue -> satisfied probe ->
  // completion) counts as memory in flight; a parked op counts as a sync
  // block. The first attempt's counters were not yet set (the issue path
  // settled at issue time); a successful retry converts sync -> mem at the
  // wake time, classifying the parked gap before it moves on.
  Processor& proc = procs_[ts->processor];
  if (first_attempt) {
    if (satisfied) {
      ++proc.acct_mem;
    } else {
      ++proc.acct_sync;
    }
  } else if (satisfied) {
    settle(proc, arrival);
    --proc.acct_sync;
    ++proc.acct_mem;
  }

  if (satisfied) {
    // A tag flip may unblock waiters of the opposite polarity.
    if (op.kind != OpKind::kReadFF) {
      wake_waiters(op.addr, start + 1);
    }
    set_status(tid, ThreadState::Status::kWaitMemory);
    events_.push(start + 1 + net_half_ + extra, kComplete, tid);
  } else {
    set_status(tid, ThreadState::Status::kWaitSync);
    sync_waiters_[op.addr].push_back(tid);
  }
}

void MtaMachine::wake_waiters(Addr addr, Cycle now) {
  const auto it = sync_waiters_.find(addr);
  if (it == sync_waiters_.end() || it->second.empty()) {
    return;
  }
  // Re-arbitrate every waiter in FIFO order; each recheck consumes a bank
  // cycle in attempt_sync — the retry traffic that makes hotspots hurt.
  std::deque<u32> woken = std::move(it->second);
  sync_waiters_.erase(it);
  for (const u32 tid : woken) {
    stats_.sync_retries += 1;
    events_.push(now, kRetry, tid);
  }
}

void MtaMachine::barrier_arrive(u32 tid, Cycle now) {
  set_status(tid, ThreadState::Status::kWaitBarrier);
  barrier_waiting_.push_back(tid);
  barrier_max_arrival_ = std::max(barrier_max_arrival_, now);
  maybe_release_barrier();
}

void MtaMachine::maybe_release_barrier() {
  if (static_cast<i64>(barrier_waiting_.size()) != live_ || live_ == 0) {
    return;
  }
  const Cycle release = barrier_max_arrival_ + config_.barrier_overhead;
  // Every live stream is parked here, so at most one release is ever in
  // flight: resume the whole episode with a single kRelease event instead of
  // one queue entry per stream. run_events() replays release_buf_ in arrival
  // order, which is exactly the order the per-stream events popped in.
  AG_DCHECK(release_buf_.empty(), "overlapping barrier releases");
  for (const u32 tid : barrier_waiting_) {
    threads_[tid]->pending.result = 0;
    set_status(tid, ThreadState::Status::kWaitMemory);
  }
  release_buf_.swap(barrier_waiting_);  // leaves barrier_waiting_ empty
  events_.push(release, kRelease, 0);
  barrier_max_arrival_ = 0;
  stats_.barriers += 1;
  // Settle the accounting up to the release before observers snapshot
  // stats(): every live stream is parked here (nothing is in flight), so the
  // per-phase breakdown deltas slice exactly at barrier boundaries. The
  // release kComplete events settle no-op and drop the barrier counters.
  for (Processor& proc : procs_) {
    settle(proc, release);
  }
  notify_barrier_release(release);
}

std::vector<ProfGaugeInfo> MtaMachine::prof_gauge_info() const {
  std::vector<ProfGaugeInfo> info;
  info.reserve(config_.processors + 3);
  for (u32 p = 0; p < config_.processors; ++p) {
    info.push_back({"p" + std::to_string(p) + ".issued", /*cumulative=*/true});
  }
  info.push_back({"streams_ready", /*cumulative=*/false});
  info.push_back({"streams_blocked", /*cumulative=*/false});
  info.push_back({"mem_outstanding", /*cumulative=*/false});
  return info;
}

void MtaMachine::sample_prof_gauges(i64* out) const {
  // Gauge slots follow prof_gauge_info(): config_.processors issued counters,
  // then ready/blocked/outstanding. Before the first region procs_ is still
  // empty; pad the per-processor slots so the layout stays aligned (the
  // machine is idle then, so zero is also the true value).
  i64 ready = 0;
  i64 in_use = 0;
  i64 outstanding = 0;
  usize i = 0;
  for (u32 p = 0; p < config_.processors; ++p) {
    if (p < procs_.size()) {
      const Processor& proc = procs_[p];
      out[i++] = proc.issued;
      ready += static_cast<i64>(proc.ready_fifo.size());
      in_use += proc.streams_in_use;
      // acct_mem counts exactly the streams in kWaitMemory on a memory or
      // satisfied-sync round trip (compute occupancy and barrier releases are
      // charged elsewhere), so summing it replaces the per-thread walk.
      outstanding += proc.acct_mem;
    } else {
      out[i++] = 0;
    }
  }
  out[i++] = ready;
  out[i++] = in_use - ready;  // streams holding a slot but not issuable
  out[i] = outstanding;
}

void MtaMachine::on_finish(u32 tid, Cycle now) {
  set_status(tid, ThreadState::Status::kFinished);
  --live_;
  region_end_ = std::max(region_end_, now);
  Processor& proc = procs_[threads_[tid]->processor];
  if (!proc.admission_queue.empty()) {
    const u32 next = proc.admission_queue.pop();
    advance_thread(*threads_[next]);
    post_advance(next, now);
  } else {
    --proc.streams_in_use;
  }
  // A finished thread no longer participates in barriers.
  maybe_release_barrier();
}

}  // namespace archgraph::sim
