// Cycle-approximate model of the Cray MTA-2 (paper §2.2).
//
// What is modelled, and the paper sentence it comes from:
//   * p processors, 128 hardware streams each; "a processor switches among
//     its streams every cycle, executing instructions from non-blocked
//     streams" — one issue slot per processor per cycle, granted to ready
//     streams; threads beyond the stream count wait for a free stream.
//   * "no local memory and no data caches ... parallelism, not caches, is
//     used to tolerate memory latency" — every memory operation costs one
//     issue slot and completes after the network+memory round trip
//     (~memory_latency cycles, default 100); the issuing thread blocks, the
//     processor does not.
//   * "logical memory addresses are hashed across physical memory to avoid
//     stride-induced hotspots" — banks are selected by an avalanche hash of
//     the address (a config switch disables hashing for the ablation bench);
//     each bank retires one operation per cycle, so concentrated access to
//     one word serializes — the paper's "hotspot".
//   * "one tag bit (the full-and-empty bit) is used to implement synchronous
//     load/store operations; a synchronous load/store retries until it
//     succeeds" — readff/readfe/writeef check the tag at the bank; an
//     unsatisfied access parks on a per-word wait list and re-arbitrates
//     (consuming bank slots) whenever the tag flips.
//   * "a machine instruction, int_fetch_add ... takes one cycle" — one issue
//     slot, atomic read-modify-write during its bank cycle.
//
// Not modelled (documented in DESIGN.md §6): the 3-wide LIW instruction
// format and 8-deep per-stream lookahead. Each costed operation is a
// single-issue instruction; kernels therefore need slightly more concurrency
// than real MTA code for full utilization, which only strengthens the
// paper's "performance is a function of parallelism" point.
#pragma once

#include <deque>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/ring.hpp"

namespace archgraph::sim {

struct MtaConfig {
  u32 processors = 1;
  u32 streams_per_processor = 128;
  /// Round-trip memory latency in cycles, excluding bank queuing ("about 100
  /// cycles", §2.2).
  Cycle memory_latency = 100;
  /// Hashed memory banks per processor; each retires 1 op/cycle. Deep enough
  /// that hashed traffic does not convoy even when all 128 streams issue in
  /// lockstep — the MTA-2's stated memory constraint is the network's one
  /// word per processor per cycle (enforced by the issue model), not bank
  /// count. A single hot word still serializes: one word lives in one bank.
  u32 banks_per_processor = 512;
  /// Cost of entering a parallel region (runtime creates/maps the threads).
  Cycle region_fork_cycles = 256;
  /// Extra cycles between the last barrier arrival and the release.
  Cycle barrier_overhead = 64;
  /// Disable to reproduce stride-induced hotspots (ablation).
  bool hash_addresses = true;
  /// Extra round-trip latency when a memory operation's bank belongs to a
  /// different processor's memory. 0 = the MTA-2's flat memory ("all memory
  /// is equidistant from all processors"). A positive value models the §6
  /// outlook — "in 2005 Cray will build a third-generation multithreaded
  /// architecture [from] commodity parts; the memory system will not be as
  /// flat" (the Eldorado/XMT direction) — which bench/ablation_xmt studies.
  Cycle nonuniform_extra = 0;
  double clock_hz = 220e6;  // the MTA-2's 220 MHz

  bool operator==(const MtaConfig&) const = default;
};

/// Rejects configurations the model cannot simulate (zero/negative
/// processors, streams, banks, latencies, clock); throws std::logic_error
/// with a message naming the offending MtaConfig field. Called by the
/// MtaMachine constructor and by the machine-spec factory before it.
void validate(const MtaConfig& config);

class MtaMachine final : public Machine {
 public:
  explicit MtaMachine(MtaConfig config = {});

  u32 processors() const override { return config_.processors; }
  double clock_hz() const override { return config_.clock_hz; }
  i64 concurrency() const override {
    return static_cast<i64>(config_.processors) *
           config_.streams_per_processor;
  }
  const MtaConfig& config() const { return config_; }

  /// Gauges: per-processor issued slots (cumulative; reset each region, the
  /// profiler clamps the restart), then aggregate ready streams, blocked
  /// streams, and outstanding memory references (instantaneous).
  std::vector<ProfGaugeInfo> prof_gauge_info() const override;
  void sample_prof_gauges(i64* out) const override;

 protected:
  Cycle simulate(std::vector<ThreadState*>& threads) override;

 private:
  enum EventKind : u32 { kReady, kIssue, kComplete, kRetry, kRelease };

  struct Processor {
    RingView ready_fifo;       // window of MtaMachine::ring_arena_
    RingView admission_queue;  // threads waiting for a stream slot
    u32 streams_in_use = 0;
    bool issue_scheduled = false;
    Cycle clock = 0;   // next cycle this processor may issue
    i64 issued = 0;    // issue slots consumed (profiling gauge)

    // Cycle accounting: slots in [0, acct_until) are attributed; the wait
    // counters classify the gap up to the next transition (settle()).
    Cycle acct_until = 0;
    i32 acct_mem = 0;      // streams with a memory/sync round trip in flight
    i32 acct_sync = 0;     // streams parked on a full/empty tag
    i32 acct_barrier = 0;  // streams waiting at the barrier
  };

  // Per-region simulation helpers (operate on region_ state).
  /// The event loop, instantiated once with the per-pop profiler call and
  /// once without, so unprofiled runs pay no per-event null test.
  template <bool Profiled>
  void run_events();
  void on_ready(u32 tid, Cycle now);
  void handle_issue(u32 proc, Cycle now);
  void post_advance(u32 tid, Cycle now);
  void on_finish(u32 tid, Cycle now);
  Cycle service_memory(Operation& op, Cycle issue_time, u32 proc);
  void attempt_sync(u32 tid, Cycle arrival, bool first_attempt);
  /// Cycle accounting: attributes the unaccounted slots [acct_until, t) of
  /// `proc` to the stall category its wait counters imply, then advances
  /// acct_until. A no-op when t <= acct_until (past-time events).
  void settle(Processor& proc, Cycle t);
  /// Settles the completing thread's processor at `now` and releases the
  /// wait counter its pre-advance pending op held.
  void acct_complete(u32 tid, Cycle now);
  /// Claims the unaccounted slots up to proc.clock as issue occupancy.
  /// Clamped: when a barrier released by a late finish replays resumed
  /// streams at already-settled times, only the unclaimed tail is charged —
  /// acct_until never moves backward, so no slot is attributed twice.
  void acct_issue(Processor& proc);
  /// One-way extra network cycles if `bank` is not local to `proc`.
  Cycle numa_penalty(usize bank, u32 proc) const;
  void wake_waiters(Addr addr, Cycle now);
  void barrier_arrive(u32 tid, Cycle now);
  void maybe_release_barrier();
  usize bank_of(Addr addr) const;

  MtaConfig config_;
  Cycle net_half_;  // one-way network latency

  // Region-scoped state (reset by simulate()).
  std::vector<ThreadState*> threads_;
  std::vector<Processor> procs_;
  std::vector<u32> ring_arena_;  // backs every processor's two rings
  std::vector<Cycle> bank_free_;
  std::unordered_map<Addr, std::deque<u32>> sync_waiters_;
  std::vector<u32> barrier_waiting_;
  std::vector<u32> release_buf_;  // threads resumed by the pending kRelease
  Cycle barrier_max_arrival_ = 0;
  i64 live_ = 0;
  Cycle region_end_ = 0;
  EventQueue events_;
};

}  // namespace archgraph::sim
