#include "sim/memory.hpp"

#include "common/prng.hpp"

namespace archgraph::sim {

Addr SimMemory::alloc(i64 words) {
  AG_CHECK(words >= 0, "negative allocation");
  const Addr base = words_.size();
  // Deterministic inter-allocation skew. Without it, a sequence of
  // equal-sized power-of-two arrays lands at offsets that are multiples of
  // the SMP caches' way size, so corresponding elements of different arrays
  // alias to the same direct-mapped L1 set and evict each other on every
  // access — a pathology real allocators' non-aligned placement avoids. A
  // few hundred words of pad (not a multiple of any cache's set stride)
  // de-correlates the arrays; the MTA model hashes addresses and is
  // indifferent.
  u64 pad_state = base ^ 0x9e3779b97f4a7c15ULL;
  const u64 pad = 24 + splitmix64(pad_state) % 408;
  words_.resize(words_.size() + static_cast<usize>(words) + pad, 0);
  full_.resize(words_.size(), 1);  // words start full (normal-store state)
  return base;
}

}  // namespace archgraph::sim
