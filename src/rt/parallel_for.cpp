#include "rt/parallel_for.hpp"

#include <algorithm>
#include <atomic>

#include "common/check.hpp"

namespace archgraph::rt {

void parallel_for_blocks(ThreadPool& pool, i64 begin, i64 end,
                         Schedule schedule, i64 chunk,
                         const std::function<void(usize, i64, i64)>& body) {
  AG_CHECK(begin <= end, "inverted range");
  AG_CHECK(chunk >= 1, "chunk must be positive");
  const i64 total = end - begin;
  const auto workers = static_cast<i64>(pool.size());

  switch (schedule) {
    case Schedule::Static: {
      pool.run([&](usize worker) {
        // Even split with the first (total % workers) blocks one larger.
        const auto w = static_cast<i64>(worker);
        const i64 base = total / workers;
        const i64 extra = total % workers;
        const i64 lo = begin + w * base + std::min(w, extra);
        const i64 hi = lo + base + (w < extra ? 1 : 0);
        if (lo < hi) {
          body(worker, lo, hi);
        }
      });
      return;
    }
    case Schedule::Dynamic: {
      std::atomic<i64> cursor{begin};
      pool.run([&](usize worker) {
        while (true) {
          const i64 lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
          if (lo >= end) {
            return;
          }
          body(worker, lo, std::min(lo + chunk, end));
        }
      });
      return;
    }
    case Schedule::Guided: {
      std::atomic<i64> cursor{begin};
      pool.run([&](usize worker) {
        while (true) {
          // Claim half the (approximate) remainder divided by workers,
          // but at least `chunk`.
          const i64 seen = cursor.load(std::memory_order_relaxed);
          const i64 want =
              std::max(chunk, (end - std::min(seen, end)) / (2 * workers));
          const i64 lo = cursor.fetch_add(want, std::memory_order_relaxed);
          if (lo >= end) {
            return;
          }
          body(worker, lo, std::min(lo + want, end));
        }
      });
      return;
    }
  }
}

void parallel_for(ThreadPool& pool, i64 begin, i64 end, Schedule schedule,
                  i64 chunk, const std::function<void(i64)>& body) {
  parallel_for_blocks(pool, begin, end, schedule, chunk,
                      [&](usize, i64 lo, i64 hi) {
                        for (i64 i = lo; i < hi; ++i) {
                          body(i);
                        }
                      });
}

}  // namespace archgraph::rt
