// Software barriers.
//
// The paper notes SMPs have "no hardware support for synchronization
// operations — locks and barriers are typically implemented in software", and
// the cost model charges B(n,p) per barrier. These are the two classic
// software implementations: a centralized sense-reversing spin barrier (what
// the cost model's O(p) term describes) and a blocking barrier for
// oversubscribed hosts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/types.hpp"

namespace archgraph::rt {

/// Centralized sense-reversing spin barrier. All `participants` threads must
/// call arrive_and_wait(); reusable across any number of phases.
class SpinBarrier {
 public:
  explicit SpinBarrier(usize participants);

  void arrive_and_wait();

 private:
  const usize participants_;
  std::atomic<usize> count_;
  std::atomic<u64> sense_{0};
};

/// Mutex/condvar barrier: threads sleep instead of spinning. Preferable when
/// the host has fewer cores than participants (always true in this repo's
/// single-core CI environment).
class BlockingBarrier {
 public:
  explicit BlockingBarrier(usize participants);

  void arrive_and_wait();

 private:
  const usize participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  usize count_ = 0;
  u64 generation_ = 0;
};

}  // namespace archgraph::rt
