// A persistent worker pool for the host-native parallel algorithms.
//
// The paper's SMP codes are POSIX-threads programs with software barriers;
// this pool plays the role of that thread runtime. Workers are created once
// and reused across parallel regions, so region launch cost is a wakeup, not
// a thread spawn — matching how the Helman–JáJá implementations are run.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace archgraph::rt {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1). The constructing thread is not a
  /// worker; it blocks in run() until the region completes.
  explicit ThreadPool(usize num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  usize size() const { return workers_.size(); }

  /// Executes body(worker_id) once on every worker, worker_id in [0, size()).
  /// Blocks until all workers finish. Exceptions thrown by workers are
  /// rethrown (the first one) in the caller.
  void run(const std::function<void(usize)>& body);

  /// Enqueues one task for any idle worker and returns immediately. The
  /// future carries the task's completion; an exception thrown by the task is
  /// captured and rethrown from future.get() in the caller — it never
  /// terminates the worker. Queued tasks are drained before the pool shuts
  /// down, and submit() composes with run(): workers prefer queued tasks,
  /// then join the next region.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_main(usize id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(usize)>* body_ = nullptr;
  std::deque<std::packaged_task<void()>> tasks_;
  u64 generation_ = 0;
  usize remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace archgraph::rt
