// A persistent worker pool for the host-native parallel algorithms.
//
// The paper's SMP codes are POSIX-threads programs with software barriers;
// this pool plays the role of that thread runtime. Workers are created once
// and reused across parallel regions, so region launch cost is a wakeup, not
// a thread spawn — matching how the Helman–JáJá implementations are run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace archgraph::rt {

class ThreadPool {
 public:
  /// Host-execution counters the pool accumulates over its lifetime —
  /// observational only (relaxed atomics on paths that already take the pool
  /// lock), read by the telemetry layer after a run. `queue_depth` is the
  /// instantaneous submit() backlog; the rest are monotonic.
  struct StatsSnapshot {
    u64 regions_run = 0;      ///< run() regions completed
    u64 tasks_submitted = 0;  ///< submit() calls accepted
    u64 tasks_executed = 0;   ///< queued tasks a worker finished
    usize queue_depth = 0;    ///< submitted − executed: the in-flight backlog
  };
  /// Creates `num_threads` workers (>= 1). The constructing thread is not a
  /// worker; it blocks in run() until the region completes.
  explicit ThreadPool(usize num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  usize size() const { return workers_.size(); }

  /// Executes body(worker_id) once on every worker, worker_id in [0, size()).
  /// Blocks until all workers finish. Exceptions thrown by workers are
  /// rethrown (the first one) in the caller.
  void run(const std::function<void(usize)>& body);

  /// Enqueues one task for any idle worker and returns immediately. The
  /// future carries the task's completion; an exception thrown by the task is
  /// captured and rethrown from future.get() in the caller — it never
  /// terminates the worker. Queued tasks are drained before the pool shuts
  /// down, and submit() composes with run(): workers prefer queued tasks,
  /// then join the next region.
  std::future<void> submit(std::function<void()> task);

  /// A consistent-enough snapshot of the execution counters (each field is
  /// individually atomic; the set is not taken under one lock — fine for
  /// telemetry, wrong for synchronization).
  StatsSnapshot stats() const;

 private:
  void worker_main(usize id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(usize)>* body_ = nullptr;
  std::deque<std::packaged_task<void()>> tasks_;
  u64 generation_ = 0;
  usize remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;

  std::atomic<u64> regions_run_{0};
  std::atomic<u64> tasks_submitted_{0};
  std::atomic<u64> tasks_executed_{0};
};

}  // namespace archgraph::rt
