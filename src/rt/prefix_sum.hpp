// Prefix computations over arrays.
//
// The paper frames list ranking as the special case of the prefix problem
// where all values are 1 and ⊕ is addition (§3). The array versions here are
// the building block used by step 4 of Helman–JáJá (scan over the Sublists
// records) and by several tests.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "rt/parallel_for.hpp"
#include "rt/thread_pool.hpp"

namespace archgraph::rt {

/// In-place inclusive scan with a generic associative op (sequential).
template <typename T, typename Op>
void inclusive_scan_seq(std::span<T> data, Op op) {
  for (usize i = 1; i < data.size(); ++i) {
    data[i] = op(data[i - 1], data[i]);
  }
}

/// In-place exclusive scan (sequential); identity becomes element 0.
template <typename T, typename Op>
void exclusive_scan_seq(std::span<T> data, T identity, Op op) {
  T running = identity;
  for (usize i = 0; i < data.size(); ++i) {
    const T next = op(running, data[i]);
    data[i] = running;
    running = next;
  }
}

/// In-place parallel inclusive scan: per-worker block scans, a sequential
/// scan over the p block totals, then a parallel fix-up pass. Two barriers —
/// exactly the B(n,p)=2 structure the Helman–JáJá prefix paper analyzes.
template <typename T, typename Op>
void inclusive_scan_parallel(ThreadPool& pool, std::span<T> data, T identity,
                             Op op) {
  const usize p = pool.size();
  if (data.size() < 2 * p || p == 1) {
    inclusive_scan_seq(data, op);
    return;
  }
  std::vector<T> block_total(p, identity);
  parallel_for_blocks(pool, 0, static_cast<i64>(data.size()),
                      Schedule::Static, 1,
                      [&](usize worker, i64 lo, i64 hi) {
                        for (i64 i = lo + 1; i < hi; ++i) {
                          data[static_cast<usize>(i)] =
                              op(data[static_cast<usize>(i - 1)],
                                 data[static_cast<usize>(i)]);
                        }
                        block_total[worker] = data[static_cast<usize>(hi - 1)];
                      });
  exclusive_scan_seq(std::span<T>{block_total}, identity, op);
  parallel_for_blocks(pool, 0, static_cast<i64>(data.size()),
                      Schedule::Static, 1,
                      [&](usize worker, i64 lo, i64 hi) {
                        const T offset = block_total[worker];
                        for (i64 i = lo; i < hi; ++i) {
                          data[static_cast<usize>(i)] =
                              op(offset, data[static_cast<usize>(i)]);
                        }
                      });
}

/// Convenience: parallel inclusive prefix sums of i64.
void prefix_sums(ThreadPool& pool, std::span<i64> data);

}  // namespace archgraph::rt
