// Parallel loops over index ranges with the three classic schedules.
//
// `Schedule::Dynamic` is the host-native analogue of the MTA's
// `#pragma mta assert parallel` + dynamic stream scheduling: workers claim the
// next chunk with an atomic fetch-add on a shared counter, exactly the
// int_fetch_add idiom the paper describes for load-balancing uneven walks.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "rt/thread_pool.hpp"

namespace archgraph::rt {

enum class Schedule {
  Static,   // contiguous blocks, one per worker (Helman–JáJá partitioning)
  Dynamic,  // fetch-add chunk claiming (MTA-style)
  Guided,   // exponentially shrinking chunks, floor of `chunk`
};

/// Calls body(worker, lo, hi) for disjoint subranges covering [begin, end).
/// Under Static each worker receives exactly one (possibly empty) block;
/// under Dynamic/Guided workers claim chunks until the range is exhausted.
void parallel_for_blocks(ThreadPool& pool, i64 begin, i64 end,
                         Schedule schedule, i64 chunk,
                         const std::function<void(usize, i64, i64)>& body);

/// Calls body(i) for every i in [begin, end).
void parallel_for(ThreadPool& pool, i64 begin, i64 end, Schedule schedule,
                  i64 chunk, const std::function<void(i64)>& body);

/// Parallel reduction: init + sum of body(i) over [begin, end) with
/// operator+. Per-worker partials are cache-line padded.
template <typename T, typename Body>
T parallel_reduce(ThreadPool& pool, i64 begin, i64 end, T init,
                  const Body& body) {
  struct alignas(64) Padded {
    T value{};
  };
  std::vector<Padded> partial(pool.size());
  parallel_for_blocks(pool, begin, end, Schedule::Static, /*chunk=*/1,
                      [&](usize worker, i64 lo, i64 hi) {
                        T local{};
                        for (i64 i = lo; i < hi; ++i) {
                          local = local + body(i);
                        }
                        partial[worker].value = partial[worker].value + local;
                      });
  T total = init;
  for (const auto& p : partial) {
    total = total + p.value;
  }
  return total;
}

}  // namespace archgraph::rt
