#include "rt/thread_pool.hpp"

#include "common/check.hpp"

namespace archgraph::rt {

ThreadPool::ThreadPool(usize num_threads) {
  AG_CHECK(num_threads >= 1, "a pool needs at least one worker");
  workers_.reserve(num_threads);
  for (usize id = 0; id < num_threads; ++id) {
    workers_.emplace_back([this, id] { worker_main(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::run(const std::function<void(usize)>& body) {
  std::unique_lock lock(mutex_);
  body_ = &body;
  remaining_ = workers_.size();
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
}

void ThreadPool::worker_main(usize id) {
  u64 seen_generation = 0;
  while (true) {
    const std::function<void(usize)>* body = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      body = body_;
    }
    std::exception_ptr error;
    try {
      (*body)(id);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) {
        first_error_ = error;
      }
      if (--remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace archgraph::rt
