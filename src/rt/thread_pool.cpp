#include "rt/thread_pool.hpp"

#include <utility>

#include "common/check.hpp"

namespace archgraph::rt {

ThreadPool::ThreadPool(usize num_threads) {
  AG_CHECK(num_threads >= 1, "a pool needs at least one worker");
  workers_.reserve(num_threads);
  for (usize id = 0; id < num_threads; ++id) {
    workers_.emplace_back([this, id] { worker_main(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::run(const std::function<void(usize)>& body) {
  std::unique_lock lock(mutex_);
  body_ = &body;
  remaining_ = workers_.size();
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  body_ = nullptr;
  regions_run_.fetch_add(1, std::memory_order_relaxed);
  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    AG_CHECK(!shutdown_, "submit() on a shut-down pool");
    tasks_.push_back(std::move(packaged));
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  start_cv_.notify_one();
  return future;
}

void ThreadPool::worker_main(usize id) {
  u64 seen_generation = 0;
  while (true) {
    const std::function<void(usize)>* body = nullptr;
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || !tasks_.empty() || generation_ != seen_generation;
      });
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (shutdown_) {
        return;
      } else {
        seen_generation = generation_;
        body = body_;
      }
    }
    if (task.valid()) {
      // packaged_task routes the task's exception into its future.
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::exception_ptr error;
    try {
      (*body)(id);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) {
        first_error_ = error;
      }
      if (--remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

ThreadPool::StatsSnapshot ThreadPool::stats() const {
  StatsSnapshot s;
  s.regions_run = regions_run_.load(std::memory_order_relaxed);
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.queue_depth = static_cast<usize>(s.tasks_submitted - s.tasks_executed);
  return s;
}

}  // namespace archgraph::rt
