#include "rt/prefix_sum.hpp"

namespace archgraph::rt {

void prefix_sums(ThreadPool& pool, std::span<i64> data) {
  inclusive_scan_parallel(pool, data, i64{0},
                          [](i64 a, i64 b) { return a + b; });
}

}  // namespace archgraph::rt
