#include "rt/barrier.hpp"

#include <thread>

#include "common/check.hpp"

namespace archgraph::rt {

SpinBarrier::SpinBarrier(usize participants)
    : participants_(participants), count_(participants) {
  AG_CHECK(participants >= 1, "barrier needs at least one participant");
}

void SpinBarrier::arrive_and_wait() {
  const u64 my_sense = sense_.load(std::memory_order_acquire);
  if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last arriver: reset the count and flip the sense to release everyone.
    count_.store(participants_, std::memory_order_relaxed);
    sense_.store(my_sense + 1, std::memory_order_release);
  } else {
    while (sense_.load(std::memory_order_acquire) == my_sense) {
      // On an oversubscribed host, yielding lets the remaining participants
      // actually reach the barrier.
      std::this_thread::yield();
    }
  }
}

BlockingBarrier::BlockingBarrier(usize participants)
    : participants_(participants) {
  AG_CHECK(participants >= 1, "barrier needs at least one participant");
}

void BlockingBarrier::arrive_and_wait() {
  std::unique_lock lock(mutex_);
  const u64 my_generation = generation_;
  if (++count_ == participants_) {
    count_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }
}

}  // namespace archgraph::rt
