// archgraph_sweep — declarative experiment campaigns over the simulated
// machines: expand a sweep spec into its run matrix, execute every cell, and
// gate the results against a committed baseline.
//
// Usage:
//   archgraph_sweep run SPEC... [--out FILE] [--jobs N] [--dry-run]
//                               [--no-verify] [--profile]
//                               [--profile-dir DIR] [--profile-interval K]
//                               [--events-out FILE] [--metrics-out FILE]
//                               [--no-progress]
//   archgraph_sweep check RESULTS --against BASELINE [--tol T]
//                                 [--breakdown-tol T]
//   archgraph_sweep verify-manifest MANIFEST RESULTS
//   archgraph_sweep --list
//
// SPEC is either a spec string in the src/sweep/spec.hpp grammar, e.g.
//   "kernel=lr_walk machine=mta:procs={1,2,4,8} layout=random n=65536"
// or the name of a canned grid (bench_util.hpp; `--list` prints them) — the
// same grids the bench binaries run, honoring
// ARCHGRAPH_BENCH_SCALE=quick|default|full.
// Several SPECs concatenate into one plan (duplicate cells are rejected).
//
// `run` writes one JSON object per cell (JSONL, schema_version-stamped) to
// --out, or stdout with the progress report on stderr. Cells fan out over
// --jobs N host threads (default: one per hardware thread); records are
// always emitted in plan order, so the JSONL is byte-identical for every N.
// --profile attaches the interval profiler to every cell; --profile-dir DIR
// (implies --profile) additionally writes one Chrome trace per cell to
// DIR/<sanitized_run_id>-<hash>.trace.json (hashed so run IDs that sanitize
// alike cannot overwrite each other). Profiling never changes the JSONL —
// simulated counters are byte-identical with the profiler attached.
// Host telemetry rides alongside, equally observational: a live progress
// line on stderr (TTY: redrawn in place; otherwise plain rate-limited lines;
// --no-progress disables it), --events-out FILE streams the structured host
// event log (JSONL: run_started/cell_started/cell_finished/cell_failed/
// input_generated/run_finished with monotonic timestamps), --metrics-out
// FILE writes the host MetricsRegistry as OpenMetrics text after the run.
// None of it changes the result JSONL by a byte (ci_smoke binary-diffs
// telemetry on vs off). A run with --out also writes
// <out>.manifest.json — the provenance manifest (code version, canonical
// specs, per-axis values, and an FNV-1a content hash per cell) that
// `verify-manifest` checks against a result store.
// `check` re-loads two such files, matches cells by run ID, and fails
// (exit 1) when any gated metric leaves the ±tol band, any cycle-accounting
// category share drifts more than --breakdown-tol (default: --tol) in
// absolute terms, or a cell is missing on either side — the regression gate
// ci_smoke.sh runs on every commit.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"
#include "obs/telemetry/progress.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "sim/machine_spec.hpp"
#include "sweep/manifest.hpp"
#include "sweep/registry.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "sweep/store.hpp"

namespace {

using namespace archgraph;

int run_list() {
  std::cout << "canned sweeps (ARCHGRAPH_BENCH_SCALE=quick|default|full):\n";
  const bench::Scale scale = bench::scale_from_env();
  const std::vector<std::string> canned_names = bench::canned_sweep_names();
  usize width = 0;
  for (const std::string& name : canned_names) {
    width = std::max(width, name.size());
  }
  for (const std::string& name : canned_names) {
    const std::vector<std::string> specs = bench::canned_sweep(name, scale);
    usize cells = 0;
    for (const std::string& s : specs) {
      cells += sweep::expand(s).cells.size();
    }
    std::cout << "  " << name << std::string(width - name.size() + 2, ' ')
              << cells << " cells\n";
    for (const std::string& s : specs) {
      std::cout << "      " << s << '\n';
    }
  }
  std::cout << "\nkernels:\n" << sweep::kernel_listing();
  std::cout << "\nmachine presets: mta, smp, gpu "
               "(overrides: preset:key=value,..., braces expand)\n";
  std::cout << "\nrun executes cells on --jobs N host threads (default here: "
            << sweep::auto_jobs()
            << " = hardware concurrency);\noutput is byte-identical for "
               "every N — simulated cycles never depend on host "
               "parallelism.\n";
  return 0;
}

/// A SPEC argument is a canned-grid name or a literal spec string.
std::vector<std::string> resolve_spec(const std::string& arg) {
  const std::vector<std::string> canned =
      bench::canned_sweep(arg, bench::scale_from_env());
  if (!canned.empty()) return canned;
  std::string canned_names;
  for (const std::string& name : bench::canned_sweep_names()) {
    if (!canned_names.empty()) canned_names += ", ";
    canned_names += name;
  }
  AG_CHECK(arg.find('=') != std::string::npos,
           "'" + arg + "' is neither a canned sweep (" + canned_names +
               ") nor a spec string (axis=value ...)");
  return {arg};
}

int run_run(const std::vector<std::string>& args) {
  std::vector<std::string> spec_texts;
  std::string out_path;
  std::string events_path;
  std::string metrics_path;
  bool dry_run = false;
  bool progress = true;
  sweep::RunOptions options;
  options.jobs = 0;  // auto: one worker per hardware thread
  for (usize i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      AG_CHECK(i + 1 < args.size(), "--out needs a file path");
      out_path = args[++i];
    } else if (args[i] == "--events-out") {
      AG_CHECK(i + 1 < args.size(), "--events-out needs a file path");
      events_path = args[++i];
    } else if (args[i] == "--metrics-out") {
      AG_CHECK(i + 1 < args.size(), "--metrics-out needs a file path");
      metrics_path = args[++i];
    } else if (args[i] == "--no-progress") {
      progress = false;
    } else if (args[i] == "--jobs") {
      AG_CHECK(i + 1 < args.size(), "--jobs needs a worker count");
      options.jobs =
          static_cast<usize>(parse_positive_i64("--jobs", args[++i]));
    } else if (args[i] == "--dry-run") {
      dry_run = true;
    } else if (args[i] == "--no-verify") {
      options.verify = false;
    } else if (args[i] == "--profile") {
      options.profile = true;
    } else if (args[i] == "--profile-dir") {
      AG_CHECK(i + 1 < args.size(), "--profile-dir needs a directory");
      options.profile_dir = args[++i];
    } else if (args[i] == "--profile-interval") {
      AG_CHECK(i + 1 < args.size(), "--profile-interval needs a cycle count");
      options.profile_interval =
          parse_positive_i64("--profile-interval", args[++i]);
    } else {
      AG_CHECK(args[i].rfind("--", 0) != 0,
               "unknown run flag '" + args[i] +
                   "' (valid: --out FILE, --jobs N, --dry-run, --no-verify, "
                   "--profile, --profile-dir DIR, --profile-interval K, "
                   "--events-out FILE, --metrics-out FILE, --no-progress)");
      const std::vector<std::string> resolved = resolve_spec(args[i]);
      spec_texts.insert(spec_texts.end(), resolved.begin(), resolved.end());
    }
  }
  AG_CHECK(!spec_texts.empty(),
           "run needs at least one SPEC (a spec string or a canned name — "
           "see --list)");

  const sweep::SweepPlan plan = sweep::expand_all(spec_texts);
  if (dry_run) {
    std::cout << plan.to_string();
    std::cerr << plan.cells.size() << " cells\n";
    return 0;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    AG_CHECK(file.good(), "cannot write --out file " + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  obs::telemetry::HostTelemetry telemetry;
  if (!events_path.empty()) {
    telemetry.events =
        std::make_unique<obs::telemetry::EventLog>(events_path);
  }
  options.telemetry = &telemetry;

  std::optional<obs::telemetry::ProgressReporter> reporter;
  if (progress) {
    reporter.emplace(std::cerr, plan.cells.size(),
                     obs::telemetry::fd_is_tty(fileno(stderr)));
  }

  // Stream each cell's record as it finishes — a killed sweep still leaves
  // the completed prefix on disk. Emission is in plan order even under
  // --jobs N, so this output is byte-identical for every N. The progress
  // reporter is driven from the same serialized in-order callback, so its
  // stderr lines cannot interleave with the JSONL stream.
  Timer timer;
  const sweep::PlanRun run = sweep::run_plan(
      plan, options,
      [&](const sweep::CellResult& r, usize index, usize total) {
        (void)index;
        (void)total;
        out << sweep::record_json(sweep::to_record(r)) << '\n';
        if (reporter) reporter->advance(r.cell.run_id(), timer.seconds());
      });
  if (reporter) reporter->finish();
  out.flush();
  AG_CHECK(out.good(), "short write" +
                           (out_path.empty() ? std::string{}
                                             : " to " + out_path));
  std::cerr << run.cells.size() << " cells in " << run.host_seconds
            << "s host (" << run.cells_per_sec() << " cells/sec, jobs="
            << run.jobs << ", " << run.inputs_generated
            << " inputs generated)";
  if (!out_path.empty()) {
    std::cerr << " -> " << out_path;
  }
  std::cerr << '\n';
  if (!options.profile_dir.empty()) {
    std::cerr << "profile traces in " << options.profile_dir << "/\n";
  }
  if (!out_path.empty()) {
    const std::string manifest_path = sweep::default_manifest_path(out_path);
    if (sweep::write_manifest_file(manifest_path,
                                   sweep::make_manifest(spec_texts, plan))) {
      std::cerr << "manifest -> " << manifest_path << '\n';
    }
  }
  if (telemetry.events) {
    AG_CHECK(telemetry.events->flush(),
             "short write to --events-out file " + events_path);
    std::cerr << telemetry.events->events() << " events -> " << events_path
              << '\n';
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics_file(metrics_path);
    AG_CHECK(metrics_file.good(),
             "cannot write --metrics-out file " + metrics_path);
    metrics_file << telemetry.registry.to_openmetrics();
    metrics_file.flush();
    AG_CHECK(metrics_file.good(),
             "short write to --metrics-out file " + metrics_path);
    std::cerr << "metrics -> " << metrics_path << '\n';
  }
  return 0;
}

int run_verify_manifest(const std::vector<std::string>& args) {
  AG_CHECK(args.size() == 2 && args[0].rfind("--", 0) != 0 &&
               args[1].rfind("--", 0) != 0,
           "usage: archgraph_sweep verify-manifest MANIFEST RESULTS");
  const sweep::RunManifest manifest = sweep::load_manifest_file(args[0]);
  const std::vector<sweep::ResultRecord> records =
      sweep::load_results_file(args[1]);
  const std::vector<std::string> problems =
      sweep::verify_manifest(manifest, records);
  for (const std::string& problem : problems) {
    std::cout << "FAIL " << problem << '\n';
  }
  if (!problems.empty()) {
    std::cout << problems.size() << " problem(s)\n";
    return 1;
  }
  std::cout << "manifest ok: " << manifest.cells.size() << " cells, code "
            << manifest.code_version << '\n';
  return 0;
}

int run_check(const std::vector<std::string>& args) {
  std::string current_path, baseline_path;
  sweep::CompareOptions options;
  for (usize i = 0; i < args.size(); ++i) {
    if (args[i] == "--against") {
      AG_CHECK(i + 1 < args.size(), "--against needs a baseline file");
      baseline_path = args[++i];
    } else if (args[i] == "--tol") {
      AG_CHECK(i + 1 < args.size(), "--tol needs a number");
      options.tol = parse_f64("--tol", args[++i]);
      AG_CHECK(options.tol >= 0.0, "--tol wants a non-negative tolerance");
    } else if (args[i] == "--breakdown-tol") {
      AG_CHECK(i + 1 < args.size(), "--breakdown-tol needs a number");
      options.breakdown_tol = parse_f64("--breakdown-tol", args[++i]);
      AG_CHECK(options.breakdown_tol >= 0.0,
               "--breakdown-tol wants a non-negative share tolerance");
    } else {
      AG_CHECK(args[i].rfind("--", 0) != 0,
               "unknown check flag '" + args[i] +
                   "' (valid: --against FILE, --tol T, --breakdown-tol T)");
      AG_CHECK(current_path.empty(),
               "check takes one RESULTS file, got '" + current_path +
                   "' and '" + args[i] + "'");
      current_path = args[i];
    }
  }
  AG_CHECK(!current_path.empty(), "check needs a RESULTS file");
  AG_CHECK(!baseline_path.empty(), "check needs --against BASELINE");

  const std::vector<sweep::ResultRecord> current =
      sweep::load_results_file(current_path);
  const std::vector<sweep::ResultRecord> baseline =
      sweep::load_results_file(baseline_path);
  const sweep::CompareReport report =
      sweep::compare(current, baseline, options);
  std::cout << report.to_string();
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    AG_CHECK(argc >= 2,
             "usage: archgraph_sweep <run|check|verify-manifest|--list> ... "
             "(see --list)");
    const std::string command = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "run") return run_run(args);
    if (command == "check") return run_check(args);
    if (command == "verify-manifest") return run_verify_manifest(args);
    if (command == "--list" || command == "list") return run_list();
    AG_CHECK(false, "unknown command '" + command +
                        "' (valid: run, check, verify-manifest, --list)");
  } catch (const std::exception& e) {
    std::cerr << "archgraph_sweep: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
