#!/usr/bin/env bash
# End-to-end smoke: configure, build, run the test suite, run one bench at
# quick scale with JSON emission, and validate the emitted document.
# Usage: tools/ci_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== bench (quick scale, JSON) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
ARCHGRAPH_BENCH_SCALE=quick ARCHGRAPH_BENCH_JSON="$OUT_DIR" \
    "$BUILD_DIR"/bench/table1_utilization

echo "== validate JSON =="
python3 - "$OUT_DIR/BENCH_table1_utilization.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["bench"] == "table1_utilization", doc.get("bench")
records = doc["records"]
assert len(records) == 9, f"expected 9 records (3 workloads x 3 p), got {len(records)}"
for r in records:
    for key in ("workload", "machine", "n", "m", "procs", "seconds",
                "cycles", "instructions", "utilization", "phases"):
        assert key in r, f"record missing {key}: {r.keys()}"
    assert r["machine"] == "mta"
    assert r["cycles"] > 0 and r["seconds"] > 0
    assert 0.0 < r["utilization"] <= 1.0
    assert r["phases"], "empty per-phase breakdown"
    for p in r["phases"]:
        assert p["cycles"] >= 0 and p["name"], p

print(f"ok: {len(records)} records, all fields present")
EOF

echo "== simulator hot-path bench (quick scale, JSON schema only) =="
# Host timings are advisory on shared runners, so nothing here gates on a
# speed number: the gate is that the bench runs every series and emits a
# well-formed BENCH_host_sim.json that bench_diff can consume.
ARCHGRAPH_BENCH_SCALE=quick ARCHGRAPH_BENCH_JSON="$OUT_DIR" \
    "$BUILD_DIR"/bench/micro_sim_hotpath >/dev/null
python3 - "$OUT_DIR/BENCH_host_sim.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["bench"] == "host_sim", doc.get("bench")
records = doc["records"]
names = {r["benchmark"] for r in records}
for machine in ("mta", "smp", "gpu"):
    assert any(n.startswith(f"machine/{machine}/") for n in names), \
        f"no machine/{machine}/* series in {sorted(names)}"
for r in records:
    for key in ("benchmark", "ops", "seconds", "ops_per_sec"):
        assert key in r, f"record missing {key}: {r.keys()}"
    assert r["ops"] > 0 and r["seconds"] > 0 and r["ops_per_sec"] > 0, r

print(f"ok: {len(records)} hot-path series, schema complete")
EOF
"$BUILD_DIR"/tools/bench_diff "$OUT_DIR/BENCH_host_sim.json" \
    "$OUT_DIR/BENCH_host_sim.json" --min-speedup 1.0 \
    --json "$OUT_DIR/bench_diff.json" >/dev/null
python3 - "$OUT_DIR/bench_diff.json" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
assert doc["tool"] == "bench_diff", doc.get("tool")
assert doc["ok"] is True
assert doc["series"], "self-diff emitted no series"
for s in doc["series"]:
    assert s["speedup"] == 1.0, s  # identical files: exactly 1.0
    for key in ("benchmark", "before_seconds", "after_seconds"):
        assert key in s, s
assert doc["only_before"] == [] and doc["only_after"] == []
print(f"ok: bench_diff --json emitted {len(doc['series'])} series")
EOF
echo "ok: bench_diff consumes the document (self-diff speedup 1.0, --json valid)"

echo "== bench host_metrics (BENCH_*.json carries the registry splice) =="
python3 - "$OUT_DIR/BENCH_table1_utilization.json" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
hm = doc["host_metrics"]
completed = hm["archgraph_sweep_cells_completed"]
assert completed["type"] == "counter" and completed["value"] == 9, completed
hist = hm["archgraph_sweep_cell_host_seconds"]
assert hist["type"] == "histogram" and hist["count"] == 9, hist
assert hist["buckets"][-1]["le"] == "+Inf", hist["buckets"][-1]
print(f"ok: host_metrics splice present ({len(hm)} instruments)")
EOF

echo "== cli --machine (one override per architecture) =="
"$BUILD_DIR"/tools/archgraph_cli rank --machine mta:procs=2,streams=32 \
    --n 4096 --algorithm walk --json \
    | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["machine"]["name"] == "mta", doc["machine"]
assert doc["machine"]["processors"] == 2, doc["machine"]
assert doc["machine"]["concurrency"] == 64, doc["machine"]
print("ok: mta override applied")
'
"$BUILD_DIR"/tools/archgraph_cli cc --machine smp:procs=2,l2_kb=512 \
    --n 2048 --json \
    | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["machine"]["name"] == "smp", doc["machine"]
assert doc["machine"]["processors"] == 2, doc["machine"]
print("ok: smp override applied")
'
"$BUILD_DIR"/tools/archgraph_cli cc --machine gpu:procs=2,warp_width=8 \
    --n 2048 --json \
    | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["machine"]["name"] == "gpu", doc["machine"]
assert doc["machine"]["processors"] == 2, doc["machine"]
print("ok: gpu override applied")
'

echo "== cli --machine (malformed spec must fail) =="
if "$BUILD_DIR"/tools/archgraph_cli rank --machine mta:bogus=1 \
    --n 1024 --algorithm walk >/dev/null 2>&1; then
  echo "error: malformed machine spec did not fail" >&2
  exit 1
fi
if "$BUILD_DIR"/tools/archgraph_cli cc --machine gpu:warp_width=0 \
    --n 1024 >/dev/null 2>&1; then
  echo "error: gpu:warp_width=0 did not fail" >&2
  exit 1
fi
if "$BUILD_DIR"/tools/archgraph_cli cc --machine gpu:wavefront=64 \
    --n 1024 >/dev/null 2>&1; then
  echo "error: unknown gpu spec key did not fail" >&2
  exit 1
fi
echo "ok: malformed specs rejected (mta unknown key, gpu zero width, gpu unknown key)"

echo "== sweep determinism (--jobs must not change the output) =="
"$BUILD_DIR"/tools/archgraph_sweep --list >/dev/null
"$BUILD_DIR"/tools/archgraph_sweep run ci --jobs 1 \
    --out "$OUT_DIR/ci_serial.jsonl" 2>/dev/null
"$BUILD_DIR"/tools/archgraph_sweep run ci --jobs 4 \
    --out "$OUT_DIR/ci.jsonl" 2>/dev/null
cmp "$OUT_DIR/ci_serial.jsonl" "$OUT_DIR/ci.jsonl" || {
  echo "error: --jobs 4 output differs from --jobs 1" >&2
  exit 1
}
echo "ok: ci sweep JSONL byte-identical for --jobs 1 and --jobs 4"

echo "== telemetry zero-drift (events+metrics must not change the JSONL) =="
"$BUILD_DIR"/tools/archgraph_sweep run ci --jobs 4 \
    --out "$OUT_DIR/ci_telemetry.jsonl" \
    --events-out "$OUT_DIR/ci_events.jsonl" \
    --metrics-out "$OUT_DIR/ci_metrics.txt" 2>/dev/null
cmp "$OUT_DIR/ci_serial.jsonl" "$OUT_DIR/ci_telemetry.jsonl" || {
  echo "error: --events-out/--metrics-out changed the sweep JSONL" >&2
  exit 1
}
echo "ok: instrumented ci sweep JSONL byte-identical to plain serial run"

echo "== OpenMetrics lint (--metrics-out must be well-formed) =="
python3 - "$OUT_DIR/ci_metrics.txt" <<'EOF'
import re
import sys

text = open(sys.argv[1]).read()
assert text.endswith("# EOF\n"), "exposition must end with '# EOF'"
lines = text.splitlines()

types = {}
for line in lines:
    m = re.match(r"# TYPE (\S+) (counter|gauge|histogram)$", line)
    if m:
        types[m.group(1)] = m.group(2)
assert types, "no # TYPE metadata"

helps = {m.group(1) for m in (re.match(r"# HELP (\S+) .+", l) for l in lines) if m}
assert set(types) == helps, f"TYPE/HELP mismatch: {set(types) ^ helps}"

name_re = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
buckets = {}
for line in lines:
    if line.startswith("#") or not line:
        continue
    sample, value = line.rsplit(" ", 1)
    m = re.match(r'^(\S+?)_bucket\{le="([^"]+)"\}$', sample)
    if m:
        buckets.setdefault(m.group(1), []).append((m.group(2), int(value)))
        continue
    bare = re.sub(r"\{.*\}$", "", sample)
    assert name_re.match(bare), f"bad sample name: {sample}"

for family, kind in types.items():
    if kind == "counter":
        assert any(l.startswith(f"{family}_total ") for l in lines), \
            f"counter {family} has no _total sample"
    if kind == "histogram":
        series = buckets.get(family)
        assert series, f"histogram {family} has no _bucket samples"
        assert series[-1][0] == "+Inf", f"{family}: last le must be +Inf"
        counts = [c for _, c in series]
        assert counts == sorted(counts), f"{family}: buckets not cumulative"
        count_line = next(l for l in lines if l.startswith(f"{family}_count "))
        assert int(count_line.split()[1]) == counts[-1], \
            f"{family}: _count != +Inf bucket"

expected = {"archgraph_sweep_cells_completed", "archgraph_sweep_jobs",
            "archgraph_sweep_cell_host_seconds"}
assert expected <= set(types), f"missing families: {expected - set(types)}"
print(f"ok: {len(types)} families lint clean")
EOF

echo "== event log lint (ordered, well-formed lifecycle) =="
python3 - "$OUT_DIR/ci_events.jsonl" <<'EOF'
import json
import sys

events = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert events, "empty event log"
assert events[0]["event"] == "run_started", events[0]
assert events[-1]["event"] == "run_finished", events[-1]
stamps = [e["ts_us"] for e in events]
assert stamps == sorted(stamps), "ts_us must be non-decreasing"
kinds = [e["event"] for e in events]
cells = events[0]["cells"]
assert kinds.count("cell_started") == cells, kinds
assert kinds.count("cell_finished") == cells, kinds
print(f"ok: {len(events)} events, lifecycle complete for {cells} cells")
EOF

echo "== run manifest (written, verifiable, and stable across re-runs) =="
"$BUILD_DIR"/tools/archgraph_sweep verify-manifest \
    "$OUT_DIR/ci_telemetry.jsonl.manifest.json" "$OUT_DIR/ci_telemetry.jsonl"
cmp "$OUT_DIR/ci_serial.jsonl.manifest.json" \
    "$OUT_DIR/ci_telemetry.jsonl.manifest.json" || {
  echo "error: manifest differs between re-runs of the same plan" >&2
  exit 1
}
python3 - "$OUT_DIR/ci_telemetry.jsonl.manifest.json" \
    "$OUT_DIR/ci_telemetry.jsonl" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
store_ids = {json.loads(l)["run_id"] for l in open(sys.argv[2]) if l.strip()}
cells = doc["cells"]
assert doc["cell_count"] == len(cells), doc["cell_count"]
assert {c["run_id"] for c in cells} == store_ids, "manifest/store coverage"
for c in cells:
    assert len(c["hash"]) == 16 and int(c["hash"], 16) >= 0, c["hash"]
print(f"ok: manifest covers all {len(cells)} store cells, hashes well-formed")
EOF

echo "== run manifest (corrupted hash must fail verify-manifest) =="
python3 - "$OUT_DIR/ci_telemetry.jsonl.manifest.json" \
    "$OUT_DIR/ci_manifest_corrupt.json" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
h = doc["cells"][0]["hash"]
doc["cells"][0]["hash"] = ("1" if h[0] == "0" else "0") + h[1:]
json.dump(doc, open(sys.argv[2], "w"))
EOF
if "$BUILD_DIR"/tools/archgraph_sweep verify-manifest \
    "$OUT_DIR/ci_manifest_corrupt.json" "$OUT_DIR/ci_telemetry.jsonl" \
    >/dev/null 2>&1; then
  echo "error: corrupted manifest hash did not fail verify-manifest" >&2
  exit 1
fi
echo "ok: corrupted manifest hash rejected"

echo "== cli host metrics (--json splice and --metrics-out file) =="
"$BUILD_DIR"/tools/archgraph_cli cc --machine mta --n 2048 --json \
    --metrics-out "$OUT_DIR/cli_metrics.txt" \
    | python3 -c '
import json, sys
doc = json.load(sys.stdin)
hm = doc["host_metrics"]
assert hm["archgraph_cli_runs_completed"]["value"] == 1, hm
assert hm["archgraph_cli_host_seconds"]["count"] == 1, hm
print("ok: host_metrics spliced into --json summary")
'
tail -1 "$OUT_DIR/cli_metrics.txt" | grep -q '^# EOF$' || {
  echo "error: cli --metrics-out is not OpenMetrics-terminated" >&2
  exit 1
}
echo "ok: cli --metrics-out ends with # EOF"

echo "== cycle accounting invariant (sum of categories == procs x cycles) =="
python3 - "$OUT_DIR/ci.jsonl" <<'EOF'
import json
import sys

n = 0
with open(sys.argv[1]) as f:
    for line in f:
        if not line.strip():
            continue
        r = json.loads(line)
        acct = {k: v for k, v in r.items() if k.startswith("acct_")}
        assert len(acct) == 15, \
            f"{r['run_id']}: expected 15 acct_ fields, got {sorted(acct)}"
        total = sum(acct.values())
        expect = r["procs"] * r["cycles"]
        assert total == expect, \
            f"{r['run_id']}: sum(acct_*)={total} != procs*cycles={expect}"
        n += 1
print(f"ok: accounting closed on all {n} cells")
EOF

echo "== sweep regression gate (parallel ci grid vs committed baseline) =="
"$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/ci.jsonl" \
    --against baselines/ci_quick.jsonl --tol 0
echo "ok: ci sweep matches baselines/ci_quick.jsonl at tol 0"

echo "== frontier kernels (mini-grid vs committed baseline, tol 0) =="
"$BUILD_DIR"/tools/archgraph_sweep run frontier --jobs 1 \
    --out "$OUT_DIR/frontier_serial.jsonl" 2>/dev/null
"$BUILD_DIR"/tools/archgraph_sweep run frontier --jobs 4 \
    --out "$OUT_DIR/frontier.jsonl" 2>/dev/null
cmp "$OUT_DIR/frontier_serial.jsonl" "$OUT_DIR/frontier.jsonl" || {
  echo "error: frontier --jobs 4 output differs from --jobs 1" >&2
  exit 1
}
"$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/frontier.jsonl" \
    --against baselines/frontier_quick.jsonl --tol 0
echo "ok: frontier grid deterministic across --jobs and matches baseline"

echo "== gpu kernels (mini-grid vs committed baseline, tol 0) =="
"$BUILD_DIR"/tools/archgraph_sweep run gpu --jobs 1 \
    --out "$OUT_DIR/gpu_serial.jsonl" 2>/dev/null
"$BUILD_DIR"/tools/archgraph_sweep run gpu --jobs 4 \
    --out "$OUT_DIR/gpu.jsonl" 2>/dev/null
cmp "$OUT_DIR/gpu_serial.jsonl" "$OUT_DIR/gpu.jsonl" || {
  echo "error: gpu --jobs 4 output differs from --jobs 1" >&2
  exit 1
}
"$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/gpu.jsonl" \
    --against baselines/gpu_quick.jsonl --tol 0
echo "ok: gpu grid deterministic across --jobs and matches baseline"

echo "== gpu accounting (new categories close the invariant) =="
python3 - "$OUT_DIR/gpu.jsonl" <<'EOF'
import json
import sys

n = 0
with open(sys.argv[1]) as f:
    for line in f:
        if not line.strip():
            continue
        r = json.loads(line)
        acct = {k: v for k, v in r.items() if k.startswith("acct_")}
        total = sum(acct.values())
        expect = r["procs"] * r["cycles"]
        assert total == expect, \
            f"{r['run_id']}: sum(acct_*)={total} != procs*cycles={expect}"
        gpu_cats = (acct["acct_divergence_serial"] + acct["acct_coalesce_wait"]
                    + acct["acct_bank_conflict"])
        assert gpu_cats > 0, f"{r['run_id']}: no GPU-specific stall mass"
        n += 1
print(f"ok: accounting closed with GPU categories live on all {n} cells")
EOF

echo "== frontier gate (corrupted frontier cell must fail) =="
python3 - "$OUT_DIR/frontier.jsonl" "$OUT_DIR/frontier_corrupt.jsonl" <<'EOF'
import json
import sys

records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
victim = next(r for r in records if r["kernel"].startswith("color_greedy"))
victim["cycles"] += 1
with open(sys.argv[2], "w") as f:
    for r in records:
        f.write(json.dumps(r) + "\n")
EOF
if "$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/frontier.jsonl" \
    --against "$OUT_DIR/frontier_corrupt.jsonl" --tol 0 >/dev/null; then
  echo "error: one-cycle coloring drift did not fail the tol-0 gate" >&2
  exit 1
fi
echo "ok: single-cycle coloring drift rejected at tol 0"

echo "== result validators (corrupted coloring / BFS forest rejected) =="
"$BUILD_DIR"/tests/tests_graph \
    --gtest_filter='IsProperColoring.*:IsBfsForest.*' \
    --gtest_brief=1
echo "ok: is_proper_coloring / is_bfs_forest reject corrupted results"

echo "== profiler zero-drift (profiled sweep JSONL must be byte-identical) =="
mkdir -p "$OUT_DIR/traces"
"$BUILD_DIR"/tools/archgraph_sweep run ci --jobs 1 --profile \
    --profile-dir "$OUT_DIR/traces" --out "$OUT_DIR/ci_profiled.jsonl" \
    2>/dev/null
cmp "$OUT_DIR/ci_serial.jsonl" "$OUT_DIR/ci_profiled.jsonl" || {
  echo "error: --profile changed the sweep JSONL" >&2
  exit 1
}
echo "ok: profiled ci sweep JSONL byte-identical to unprofiled"

echo "== profiler gate (profiled runs vs both committed baselines, tol 0) =="
"$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/ci_profiled.jsonl" \
    --against baselines/ci_quick.jsonl --tol 0
ARCHGRAPH_BENCH_SCALE=quick "$BUILD_DIR"/tools/archgraph_sweep run fig1 \
    --profile --out "$OUT_DIR/fig1_profiled.jsonl" 2>/dev/null
"$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/fig1_profiled.jsonl" \
    --against baselines/fig1_quick.jsonl --tol 0
echo "ok: profiled sweeps pass check --tol 0 against both baselines"

echo "== profile trace (valid Chrome trace with counter tracks) =="
TRACE_COUNT=$(ls "$OUT_DIR"/traces/*.trace.json | wc -l)
[ "$TRACE_COUNT" -eq 2 ] || {
  echo "error: expected 2 per-cell traces, got $TRACE_COUNT" >&2
  exit 1
}
"$BUILD_DIR"/tools/archgraph_cli rank --machine smp:procs=2,l2_kb=64 \
    --n 4096 --layout random --algorithm hj \
    --profile-trace "$OUT_DIR/cli.trace.json" >/dev/null
for trace in "$OUT_DIR"/traces/*.trace.json "$OUT_DIR/cli.trace.json"; do
  python3 - "$trace" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

events = doc["traceEvents"]
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert counters, "no counter tracks in trace"
assert any(e.get("ph") == "X" for e in events), "no span events in trace"
prof = doc["archgraph_profile"]
assert prof["regions"], "no labeled regions in embedded profile"
acct = prof["cycle_accounting"]
assert acct["slots"] == acct["processors"] * acct["cycles"], acct
assert abs(sum(acct["shares"].values()) - 1.0) < 1e-6, acct["shares"]
stacked = [e for e in events
           if e.get("ph") == "C" and e["name"] == "cycle_accounting"]
assert stacked, "no stacked cycle_accounting counter track"
assert all(len(e["args"]) > 1 for e in stacked), \
    "stacked track events should carry one arg per live category"
print(f"ok: {sys.argv[1].rsplit('/', 1)[-1]}: "
      f"{len(counters)} counter tracks, {len(prof['regions'])} regions, "
      f"{len(stacked)} stacked accounting samples")
EOF
done
"$BUILD_DIR"/tools/archgraph_prof_report "$OUT_DIR/cli.trace.json" \
    --csv "$OUT_DIR/cli.csv" >/dev/null
grep -q '^cycle_accounting,' "$OUT_DIR/cli.csv" || {
  echo "error: --csv export lacks cycle_accounting rows" >&2
  exit 1
}
echo "ok: archgraph_prof_report renders the trace (+ --csv export)"

echo "== sweep gate (corrupted baseline must fail) =="
python3 - "$OUT_DIR/ci.jsonl" "$OUT_DIR/ci_corrupt.jsonl" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    records = [json.loads(line) for line in f if line.strip()]
records[0]["cycles"] = int(records[0]["cycles"] * 1.5)
with open(sys.argv[2], "w") as f:
    for r in records:
        f.write(json.dumps(r) + "\n")
EOF
if "$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/ci.jsonl" \
    --against "$OUT_DIR/ci_corrupt.jsonl" >/dev/null; then
  echo "error: corrupted baseline did not fail the gate" >&2
  exit 1
fi
echo "ok: corrupted baseline rejected"

echo "== sweep gate (breakdown drift with identical cycles must fail) =="
python3 - "$OUT_DIR/ci.jsonl" "$OUT_DIR/ci_drift.jsonl" <<'EOF'
import json
import sys

records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
r = records[0]
keys = [k for k in r if k.startswith("acct_")]
src = max(keys, key=lambda k: r[k])
dst = next(k for k in keys if k != src)
moved = r[src] // 2
r[src] -= moved
r[dst] += moved  # total slots unchanged, so cycles still match exactly
with open(sys.argv[2], "w") as f:
    for rec in records:
        f.write(json.dumps(rec) + "\n")
EOF
if "$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/ci.jsonl" \
    --against "$OUT_DIR/ci_drift.jsonl" >/dev/null; then
  echo "error: breakdown drift with identical cycles did not fail" >&2
  exit 1
fi
"$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/ci.jsonl" \
    --against "$OUT_DIR/ci_drift.jsonl" --breakdown-tol 1.0 >/dev/null
echo "ok: breakdown drift caught; --breakdown-tol 1.0 waives it"

echo "== sweep gate (wrong schema_version must be refused) =="
echo '{"schema_version":999,"run_id":"x"}' > "$OUT_DIR/ci_future.jsonl"
if "$BUILD_DIR"/tools/archgraph_sweep check "$OUT_DIR/ci.jsonl" \
    --against "$OUT_DIR/ci_future.jsonl" >/dev/null 2>&1; then
  echo "error: incompatible schema_version was not refused" >&2
  exit 1
fi
echo "ok: incompatible schema_version refused"

if [ "${ARCHGRAPH_SMOKE_SANITIZE:-0}" != "0" ]; then
  echo "== sanitizer pass (opt-in: ARCHGRAPH_SMOKE_SANITIZE=1) =="
  SAN_DIR="${BUILD_DIR}-san"
  cmake -B "$SAN_DIR" -S . -DARCHGRAPH_SANITIZE=address,undefined >/dev/null
  cmake --build "$SAN_DIR" -j "$(nproc)"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$(nproc)"
  "$SAN_DIR"/tools/archgraph_cli cc --random 1024,4096,1 --machine mta \
      >/dev/null
  "$SAN_DIR"/tools/archgraph_cli cc --random 1024,4096,1 --machine smp \
      >/dev/null
  echo "ok: ASan+UBSan build, tests, and both machines clean"
fi

echo "== smoke passed =="
