#!/usr/bin/env bash
# End-to-end smoke: configure, build, run the test suite, run one bench at
# quick scale with JSON emission, and validate the emitted document.
# Usage: tools/ci_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== bench (quick scale, JSON) =="
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
ARCHGRAPH_BENCH_SCALE=quick ARCHGRAPH_BENCH_JSON="$OUT_DIR" \
    "$BUILD_DIR"/bench/table1_utilization

echo "== validate JSON =="
python3 - "$OUT_DIR/BENCH_table1_utilization.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["bench"] == "table1_utilization", doc.get("bench")
records = doc["records"]
assert len(records) == 9, f"expected 9 records (3 workloads x 3 p), got {len(records)}"
for r in records:
    for key in ("workload", "machine", "n", "m", "procs", "seconds",
                "cycles", "instructions", "utilization", "phases"):
        assert key in r, f"record missing {key}: {r.keys()}"
    assert r["machine"] == "mta"
    assert r["cycles"] > 0 and r["seconds"] > 0
    assert 0.0 < r["utilization"] <= 1.0
    assert r["phases"], "empty per-phase breakdown"
    for p in r["phases"]:
        assert p["cycles"] >= 0 and p["name"], p

print(f"ok: {len(records)} records, all fields present")
EOF

echo "== smoke passed =="
