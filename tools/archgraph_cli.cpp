// archgraph_cli — run the library's kernels on generated or DIMACS inputs
// from the command line, natively or on the simulated machines.
//
// Usage:
//   archgraph_cli cc     [--input FILE | --random n,m,seed]
//                        [--algorithm uf|bfs|dfs|sv|as|mate]
//                        [--machine native|mta|smp] [--procs P]
//   archgraph_cli rank   [--n N] [--layout ordered|random] [--seed S]
//                        [--algorithm seq|wyllie|hj|compaction|walk]
//                        [--machine native|mta|smp] [--procs P]
//   archgraph_cli msf    [--input FILE | --random n,m,seed]
//                        [--algorithm kruskal|boruvka|boruvka-par]
//   archgraph_cli gen    --random n,m,seed --output FILE     (DIMACS writer)
//
// Simulated runs print cycles, simulated seconds and utilization; native
// runs print wall time. Every run self-checks against a reference.
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/concomp/concomp.hpp"
#include "core/experiment.hpp"
#include "core/kernels/kernels.hpp"
#include "core/listrank/listrank.hpp"
#include "core/mst/mst.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/linked_list.hpp"
#include "graph/validate.hpp"
#include "rt/thread_pool.hpp"

namespace {

using namespace archgraph;

struct Options {
  std::string command;
  std::map<std::string, std::string> named;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
  i64 get_int(const std::string& key, i64 fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : std::stoll(it->second);
  }
};

Options parse(int argc, char** argv) {
  AG_CHECK(argc >= 2, "usage: archgraph_cli <cc|rank|msf|gen> [--flag value]");
  Options opts;
  opts.command = argv[1];
  for (int i = 2; i < argc; i += 2) {
    const std::string flag = argv[i];
    AG_CHECK(flag.rfind("--", 0) == 0 && i + 1 < argc,
             "flags look like '--name value'");
    opts.named[flag.substr(2)] = argv[i + 1];
  }
  return opts;
}

graph::EdgeList load_graph(const Options& opts,
                           std::optional<std::vector<i64>>* weights) {
  if (opts.named.contains("input")) {
    graph::DimacsGraph g = graph::read_dimacs_file(opts.get("input", ""));
    if (weights != nullptr) {
      *weights = std::move(g.weights);
    }
    return std::move(g.edges);
  }
  const std::string spec = opts.get("random", "10000,40000,1");
  i64 n = 0, m = 0;
  u64 seed = 0;
  AG_CHECK(std::sscanf(spec.c_str(), "%ld,%ld,%lu", &n, &m, &seed) == 3,
           "--random wants n,m,seed");
  if (weights != nullptr) {
    *weights = std::nullopt;
  }
  return graph::random_graph(n, m, seed);
}

template <typename MachineT>
void report_simulated(const MachineT& machine) {
  std::cout << "cycles:        " << machine.cycles() << '\n'
            << "simulated:     " << machine.seconds() * 1e3 << " ms @ "
            << machine.clock_hz() / 1e6 << " MHz\n"
            << "utilization:   " << 100.0 * machine.utilization() << "%\n"
            << "instructions:  " << machine.stats().instructions << '\n';
}

int run_cc(const Options& opts) {
  const graph::EdgeList g = load_graph(opts, nullptr);
  const std::string algorithm = opts.get("algorithm", "sv");
  const std::string machine = opts.get("machine", "native");
  const auto procs = static_cast<u32>(opts.get_int("procs", 4));
  std::cout << "connected components: n=" << g.num_vertices()
            << " m=" << g.num_edges() << " algorithm=" << algorithm
            << " machine=" << machine << " p=" << procs << '\n';

  std::vector<NodeId> labels;
  if (machine == "mta") {
    sim::MtaMachine m(core::paper_mta_config(procs));
    labels = core::sim_cc_sv_mta(m, g).labels;
    report_simulated(m);
  } else if (machine == "smp") {
    sim::SmpMachine m(core::paper_smp_config(procs));
    labels = core::sim_cc_sv_smp(m, g).labels;
    report_simulated(m);
  } else {
    rt::ThreadPool pool(static_cast<usize>(procs));
    Timer timer;
    if (algorithm == "uf") {
      labels = core::cc_union_find(g);
    } else if (algorithm == "bfs") {
      labels = core::cc_bfs(graph::CsrGraph::from_edges(g));
    } else if (algorithm == "dfs") {
      labels = core::cc_dfs(graph::CsrGraph::from_edges(g));
    } else if (algorithm == "sv") {
      labels = core::cc_shiloach_vishkin(pool, g);
    } else if (algorithm == "as") {
      labels = core::cc_awerbuch_shiloach(pool, g);
    } else if (algorithm == "mate") {
      labels = core::cc_random_mating(pool, g);
    } else {
      AG_CHECK(false, "unknown --algorithm " + algorithm);
    }
    std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
  }
  AG_CHECK(labels == core::cc_union_find(g), "self-check failed");
  std::cout << "components:    "
            << graph::validate::count_distinct_labels(labels)
            << " (verified against union-find)\n";
  return 0;
}

int run_rank(const Options& opts) {
  const i64 n = opts.get_int("n", 1 << 20);
  const std::string layout = opts.get("layout", "random");
  const graph::LinkedList list =
      layout == "ordered"
          ? graph::ordered_list(n)
          : graph::random_list(n, static_cast<u64>(opts.get_int("seed", 1)));
  const std::string algorithm = opts.get("algorithm", "hj");
  const std::string machine = opts.get("machine", "native");
  const auto procs = static_cast<u32>(opts.get_int("procs", 4));
  std::cout << "list ranking: n=" << n << " layout=" << layout
            << " algorithm=" << algorithm << " machine=" << machine
            << " p=" << procs << '\n';

  std::vector<i64> ranks;
  if (machine == "mta" || machine == "smp") {
    auto run_on = [&](sim::Machine& m) {
      if (algorithm == "walk") return core::sim_rank_list_walk(m, list);
      if (algorithm == "hj") return core::sim_rank_list_hj(m, list);
      if (algorithm == "wyllie") return core::sim_rank_list_wyllie(m, list);
      if (algorithm == "seq") return core::sim_rank_list_sequential(m, list);
      AG_CHECK(false, "unknown simulated --algorithm " + algorithm);
      return std::vector<i64>{};
    };
    if (machine == "mta") {
      sim::MtaMachine m(core::paper_mta_config(procs));
      ranks = run_on(m);
      report_simulated(m);
    } else {
      sim::SmpMachine m(core::paper_smp_config(procs));
      ranks = run_on(m);
      report_simulated(m);
    }
  } else {
    rt::ThreadPool pool(static_cast<usize>(procs));
    Timer timer;
    if (algorithm == "seq") {
      ranks = core::rank_sequential(list);
    } else if (algorithm == "wyllie") {
      ranks = core::rank_wyllie(pool, list);
    } else if (algorithm == "hj") {
      ranks = core::rank_helman_jaja(pool, list);
    } else if (algorithm == "compaction") {
      ranks = core::rank_by_compaction(pool, list);
    } else {
      AG_CHECK(false, "unknown --algorithm " + algorithm);
    }
    std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
  }
  AG_CHECK(ranks == core::rank_sequential(list), "self-check failed");
  std::cout << "verified against the sequential ranking\n";
  return 0;
}

int run_msf(const Options& opts) {
  std::optional<std::vector<i64>> file_weights;
  const graph::EdgeList g = load_graph(opts, &file_weights);
  const std::vector<i64> weights =
      file_weights.has_value()
          ? *file_weights
          : core::unique_random_weights(g.num_edges(),
                                        static_cast<u64>(
                                            opts.get_int("seed", 1)));
  const std::string algorithm = opts.get("algorithm", "boruvka-par");
  std::cout << "minimum spanning forest: n=" << g.num_vertices()
            << " m=" << g.num_edges() << " algorithm=" << algorithm << '\n';

  rt::ThreadPool pool(static_cast<usize>(opts.get_int("procs", 4)));
  Timer timer;
  core::MsfResult result;
  if (algorithm == "kruskal") {
    result = core::msf_kruskal(g, weights);
  } else if (algorithm == "boruvka") {
    result = core::msf_boruvka(g, weights);
  } else if (algorithm == "boruvka-par") {
    result = core::msf_boruvka_parallel(pool, g, weights);
  } else {
    AG_CHECK(false, "unknown --algorithm " + algorithm);
  }
  std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
  AG_CHECK(core::is_minimum_spanning_forest(g, weights, result),
           "self-check failed");
  std::cout << "forest edges:  " << result.edge_ids.size()
            << ", total weight " << result.total_weight
            << " (verified against Kruskal)\n";
  return 0;
}

int run_gen(const Options& opts) {
  const graph::EdgeList g = load_graph(opts, nullptr);
  const std::string output = opts.get("output", "");
  AG_CHECK(!output.empty(), "gen needs --output FILE");
  graph::write_dimacs_file(output, g, nullptr, "generated by archgraph_cli");
  std::cout << "wrote " << output << " (n=" << g.num_vertices()
            << ", m=" << g.num_edges() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse(argc, argv);
    if (opts.command == "cc") return run_cc(opts);
    if (opts.command == "rank") return run_rank(opts);
    if (opts.command == "msf") return run_msf(opts);
    if (opts.command == "gen") return run_gen(opts);
    AG_CHECK(false, "unknown command '" + opts.command + "'");
  } catch (const std::exception& e) {
    std::cerr << "archgraph_cli: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
