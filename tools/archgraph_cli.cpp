// archgraph_cli — run the library's kernels on generated or DIMACS inputs
// from the command line, natively or on the simulated machines.
//
// Usage:
//   archgraph_cli cc     [--input FILE | --random n,m,seed]
//                        [--algorithm uf|bfs|dfs|sv|as|mate]
//                        [--machine native|SPEC] [--procs P]
//   archgraph_cli rank   [--n N] [--layout ordered|random] [--seed S]
//                        [--algorithm seq|wyllie|hj|compaction|walk]
//                        [--machine native|SPEC] [--procs P]
//   archgraph_cli msf    [--input FILE | --random n,m,seed]
//                        [--algorithm kruskal|boruvka|boruvka-par]
//   archgraph_cli color  [--input FILE | --random n,m,seed]
//                        [--branch-avoiding]
//                        [--machine native|SPEC] [--procs P]
//   archgraph_cli bfs    [--input FILE | --random n,m,seed]
//                        [--machine native|SPEC] [--procs P]
//   archgraph_cli gen    --random n,m,seed --output FILE     (DIMACS writer)
//   archgraph_cli --list                       (kernels and machine presets)
//
// SPEC is a simulated-machine description parsed by sim::parse_machine_spec:
// a preset ("mta", "smp", or "gpu", the paper-default configurations)
// optionally followed by ":key=value,..." overrides, e.g. --machine
// mta:procs=40 or gpu:procs=8 (see src/sim/machine_spec.hpp for the key
// tables). --procs P is shorthand for a procs=P override; an explicit
// procs= inside SPEC wins over it.
//
// Observability (simulated machines only):
//   --trace FILE          write the phase/region JSONL event trace to FILE
//   --json                print the run-summary JSON document on stdout
//                         instead of the human-readable report
//   --profile             attach the interval profiler: counter timelines +
//                         per-data-structure memory attribution (summary in
//                         --json under "profile", brief table otherwise)
//   --profile-trace FILE  write a Chrome trace-event JSON (chrome://tracing,
//                         Perfetto) with counter tracks and phase spans;
//                         implies --profile
//   --profile-interval K  sampling period in simulated cycles (default 1024)
//   --metrics-out FILE    write the host-telemetry registry (wall-clock of
//                         the run, not simulated state) as OpenMetrics text;
//                         the same registry appears in --json under
//                         "host_metrics"
//
// Simulated runs print cycles, simulated seconds and utilization; native
// runs print wall time. Every run self-checks against a reference.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <memory>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/concomp/concomp.hpp"
#include "core/experiment.hpp"
#include "core/kernels/kernels.hpp"
#include "core/listrank/listrank.hpp"
#include "core/mst/mst.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/linked_list.hpp"
#include "graph/validate.hpp"
#include "obs/prof/prof.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "obs/trace.hpp"
#include "rt/thread_pool.hpp"
#include "sim/machine_spec.hpp"
#include "sweep/registry.hpp"

namespace {

using namespace archgraph;

/// Flags that take no value.
bool is_bool_flag(const std::string& name) {
  return name == "json" || name == "profile" || name == "branch-avoiding";
}

struct Options {
  std::string command;
  std::map<std::string, std::string> named;

  bool has(const std::string& key) const { return named.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
  i64 get_int(const std::string& key, i64 fallback) const {
    const auto it = named.find(key);
    if (it == named.end()) return fallback;
    return parse_i64("--" + key, it->second);
  }
  /// For count-like flags (--procs): "--procs wants a positive integer,
  /// got '0'" instead of a thread-pool error from deep inside the run.
  i64 get_positive_int(const std::string& key, i64 fallback) const {
    const auto it = named.find(key);
    if (it == named.end()) return fallback;
    return parse_positive_i64("--" + key, it->second);
  }
};

Options parse(int argc, char** argv) {
  AG_CHECK(argc >= 2,
           "usage: archgraph_cli <cc|rank|msf|color|bfs|gen> [--flag value]");
  Options opts;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    AG_CHECK(flag.rfind("--", 0) == 0, "flags look like '--name value'");
    const std::string name = flag.substr(2);
    if (is_bool_flag(name)) {
      opts.named[name] = "1";
      continue;
    }
    AG_CHECK(i + 1 < argc, "flag --" + name + " needs a value");
    opts.named[name] = argv[++i];
  }
  return opts;
}

graph::EdgeList load_graph(const Options& opts,
                           std::optional<std::vector<i64>>* weights) {
  if (opts.named.contains("input")) {
    graph::DimacsGraph g = graph::read_dimacs_file(opts.get("input", ""));
    if (weights != nullptr) {
      *weights = std::move(g.weights);
    }
    return std::move(g.edges);
  }
  const std::string spec = opts.get("random", "10000,40000,1");
  i64 n = 0, m = 0;
  u64 seed = 0;
  AG_CHECK(std::sscanf(spec.c_str(), "%ld,%ld,%lu", &n, &m, &seed) == 3,
           "--random wants n,m,seed");
  if (weights != nullptr) {
    *weights = std::nullopt;
  }
  return graph::random_graph(n, m, seed);
}

void report_simulated(const sim::Machine& machine) {
  std::cout << "cycles:        " << machine.cycles() << '\n'
            << "simulated:     " << machine.seconds() * 1e3 << " ms @ "
            << machine.clock_hz() / 1e6 << " MHz\n"
            << "utilization:   " << 100.0 * machine.utilization() << "%\n"
            << "instructions:  " << machine.stats().instructions << '\n';
  const sim::CycleBreakdown& b = machine.stats().breakdown;
  if (b.total() > 0) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    bool first = true;
    for (usize i = 0; i < sim::kCycleCatCount; ++i) {
      const auto cat = static_cast<sim::CycleCat>(i);
      if (b[cat] == 0) continue;
      if (!first) os << ", ";
      os << sim::cycle_cat_name(cat) << " " << 100.0 * b.share(cat) << "%";
      first = false;
    }
    std::cout << "cycle acct:    " << os.str() << '\n';
  }
}

/// Composes --machine SPEC with --procs P: P is inserted as the first
/// override, so an explicit procs= inside SPEC still wins (later spec keys
/// override earlier ones).
sim::MachineSpec parse_machine_opt(const std::string& text, u32 procs) {
  const auto colon = text.find(':');
  const std::string preset =
      colon == std::string::npos ? text : text.substr(0, colon);
  std::string composed = preset + ":procs=" + std::to_string(procs);
  if (colon != std::string::npos && colon + 1 < text.size()) {
    composed += ',';
    composed += text.substr(colon + 1);
  }
  return sim::parse_machine_spec(composed);
}

/// --profile / --profile-trace FILE / --profile-interval K: the interval
/// profiler, attached for the whole simulated run. Heap-held so the two
/// optional pieces (session, thread-local installation) compose simply.
struct Profiling {
  std::unique_ptr<obs::prof::ProfSession> session;
  std::unique_ptr<obs::prof::ProfSession::Install> install;
  std::string trace_path;

  bool enabled() const { return session != nullptr; }

  static Profiling from_options(const Options& opts) {
    Profiling p;
    p.trace_path = opts.get("profile-trace", "");
    if (opts.has("profile") || opts.has("profile-interval") ||
        !p.trace_path.empty()) {
      const i64 interval = opts.get_positive_int("profile-interval", 1024);
      p.session = std::make_unique<obs::prof::ProfSession>(interval);
      p.install =
          std::make_unique<obs::prof::ProfSession::Install>(*p.session);
    }
    return p;
  }

  void attach(sim::Machine& machine, const std::string& arch) {
    if (session != nullptr) session->attach(machine, arch);
  }
};

/// Human-readable --profile tail: timeline shape plus the hottest labeled
/// ranges (the full table lives in archgraph_prof_report).
void report_profile(const obs::prof::ProfSession& prof) {
  std::cout << "profile:       " << prof.sample_times().size()
            << " samples @ " << prof.interval() << " cycles\n";
  std::vector<obs::prof::RangeProfile> ranges = prof.range_profiles();
  std::sort(ranges.begin(), ranges.end(),
            [](const auto& a, const auto& b) {
              return a.accesses() > b.accesses();
            });
  const usize top = std::min<usize>(ranges.size(), 5);
  for (usize i = 0; i < top; ++i) {
    const obs::prof::RangeProfile& r = ranges[i];
    std::cout << "  " << r.name << ": " << r.accesses() << " accesses";
    if (r.miss_rate() >= 0.0) {
      std::cout << ", miss rate " << 100.0 * r.miss_rate() << "%";
    }
    std::cout << '\n';
  }
}

/// Shared tail of a traced simulated run: the JSONL trace to --trace FILE,
/// the Chrome trace to --profile-trace FILE, the host-telemetry registry to
/// --metrics-out FILE, then either the summary JSON document (--json, with
/// the profile and host_metrics objects spliced in) or the human report.
/// `host_seconds` is the host wall-clock the kernel run took — the one
/// number host telemetry has that the simulated counters don't.
void finish_simulated(obs::TraceSession& session, const sim::Machine& machine,
                      Profiling& prof, const Options& opts,
                      double host_seconds) {
  if (prof.enabled()) {
    prof.session->detach();  // unhook; the exported summary is self-contained
  }
  const std::string trace_path = opts.get("trace", "");
  if (!trace_path.empty()) {
    AG_CHECK(session.write_jsonl(trace_path),
             "cannot write --trace file " + trace_path);
    if (!opts.has("json")) {
      std::cout << "(trace written to " << trace_path << ")\n";
    }
  }
  if (!prof.trace_path.empty()) {
    AG_CHECK(prof.session->write_chrome_trace(prof.trace_path, &session),
             "cannot write --profile-trace file " + prof.trace_path);
    if (!opts.has("json")) {
      std::cout << "(profile trace written to " << prof.trace_path << ")\n";
    }
  }
  // Host telemetry: what this process spent, as opposed to what the machine
  // simulated. One run per process, so the registry is tiny — but it uses
  // the same instruments/exposition as the sweep executor's.
  obs::telemetry::HostTelemetry telemetry;
  telemetry.registry
      .counter("archgraph_cli_runs_completed", "Simulated kernel runs")
      .add(1);
  telemetry.registry
      .histogram("archgraph_cli_host_seconds",
                 "Host wall-clock of the simulated kernel run",
                 obs::telemetry::default_latency_buckets_seconds())
      .observe(host_seconds);
  const std::string metrics_path = opts.get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream metrics_file(metrics_path);
    AG_CHECK(metrics_file.good(),
             "cannot write --metrics-out file " + metrics_path);
    metrics_file << telemetry.registry.to_openmetrics();
    metrics_file.flush();
    AG_CHECK(metrics_file.good(),
             "short write to --metrics-out file " + metrics_path);
    if (!opts.has("json")) {
      std::cout << "(metrics written to " << metrics_path << ")\n";
    }
  }
  if (opts.has("json")) {
    std::string summary = session.summary_json();
    if (prof.enabled()) {
      // summary_json() is one object; splice "profile" in before the brace.
      summary.insert(summary.size() - 1,
                     ",\"profile\":" + prof.session->profile_json());
    }
    summary.insert(summary.size() - 1,
                   ",\"host_metrics\":" + telemetry.registry.to_json());
    std::cout << summary << '\n';
  } else {
    report_simulated(machine);
    if (prof.enabled()) {
      report_profile(*prof.session);
    }
  }
}

/// --trace/--json/--profile* snapshot machine counters, which native runs
/// don't have.
void check_observability_flags(const Options& opts, bool simulated) {
  AG_CHECK(simulated ||
               (!opts.has("json") && !opts.has("trace") &&
                !opts.has("profile") && !opts.has("profile-trace") &&
                !opts.has("profile-interval") && !opts.has("metrics-out")),
           "--trace/--json/--profile/--metrics-out flags require a simulated "
           "--machine (mta/smp/gpu spec)");
}

int run_cc(const Options& opts) {
  const graph::EdgeList g = load_graph(opts, nullptr);
  const std::string algorithm = opts.get("algorithm", "sv");
  const std::string machine = opts.get("machine", "native");
  const auto procs = static_cast<u32>(opts.get_positive_int("procs", 4));
  const bool simulated = machine != "native";
  check_observability_flags(opts, simulated);
  const bool json = opts.has("json");
  if (!json) {
    std::cout << "connected components: n=" << g.num_vertices()
              << " m=" << g.num_edges() << " algorithm=" << algorithm
              << " machine=" << machine << " p=" << procs << '\n';
  }

  std::vector<NodeId> labels;
  if (simulated) {
    const sim::MachineSpec spec = parse_machine_opt(machine, procs);
    const std::string arch = sim::arch_name(spec.arch);
    obs::TraceSession session("cc/" + algorithm + "/" + arch);
    obs::TraceSession::Install install(session);
    Profiling prof = Profiling::from_options(opts);
    std::unique_ptr<sim::Machine> m = sim::make_machine(spec);
    session.attach(*m, arch);
    prof.attach(*m, arch);
    Timer host_timer;
    // The _mta kernel family is machine-neutral (full/empty bits work on any
    // sim::Machine); only the SMP variants carry cache-conscious layouts.
    const core::SimCcResult result = spec.arch == sim::MachineArch::kSmp
                                         ? core::sim_cc_sv_smp(*m, g)
                                         : core::sim_cc_sv_mta(*m, g);
    const double host_seconds = host_timer.seconds();
    labels = result.labels;
    AG_CHECK(labels == core::cc_union_find(g), "self-check failed");
    session.counter_add("cc.components",
                        graph::validate::count_distinct_labels(labels));
    finish_simulated(session, *m, prof, opts, host_seconds);
  } else {
    rt::ThreadPool pool(static_cast<usize>(procs));
    Timer timer;
    if (algorithm == "uf") {
      labels = core::cc_union_find(g);
    } else if (algorithm == "bfs") {
      labels = core::cc_bfs(graph::CsrGraph::from_edges(g));
    } else if (algorithm == "dfs") {
      labels = core::cc_dfs(graph::CsrGraph::from_edges(g));
    } else if (algorithm == "sv") {
      labels = core::cc_shiloach_vishkin(pool, g);
    } else if (algorithm == "as") {
      labels = core::cc_awerbuch_shiloach(pool, g);
    } else if (algorithm == "mate") {
      labels = core::cc_random_mating(pool, g);
    } else {
      AG_CHECK(false, "unknown --algorithm " + algorithm);
    }
    std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
    AG_CHECK(labels == core::cc_union_find(g), "self-check failed");
  }
  if (!json) {
    std::cout << "components:    "
              << graph::validate::count_distinct_labels(labels)
              << " (verified against union-find)\n";
  }
  return 0;
}

int run_color(const Options& opts) {
  const graph::EdgeList g = load_graph(opts, nullptr);
  const std::string machine = opts.get("machine", "native");
  const auto procs = static_cast<u32>(opts.get_positive_int("procs", 4));
  const bool branch_avoiding = opts.has("branch-avoiding");
  const bool simulated = machine != "native";
  check_observability_flags(opts, simulated);
  const bool json = opts.has("json");
  if (!json) {
    std::cout << "greedy coloring: n=" << g.num_vertices()
              << " m=" << g.num_edges() << " variant="
              << (branch_avoiding ? "branch-avoiding" : "branchy")
              << " machine=" << machine << " p=" << procs << '\n';
  }

  // The speculative kernels' unique fixed point is the sequential first-fit
  // coloring, so the check is exact equality (plus properness) — see
  // color_greedy_sim.cpp.
  const std::vector<i64> reference =
      core::color_greedy_seq(graph::CsrGraph::from_edges(g));
  std::vector<i64> colors;
  i64 rounds = -1;
  if (simulated) {
    const sim::MachineSpec spec = parse_machine_opt(machine, procs);
    const std::string arch = sim::arch_name(spec.arch);
    obs::TraceSession session("color/greedy/" + arch);
    obs::TraceSession::Install install(session);
    Profiling prof = Profiling::from_options(opts);
    std::unique_ptr<sim::Machine> m = sim::make_machine(spec);
    session.attach(*m, arch);
    prof.attach(*m, arch);
    Timer host_timer;
    core::SimColorResult result;
    if (spec.arch == sim::MachineArch::kSmp) {
      core::SmpColorParams params;
      params.branch_avoiding = branch_avoiding;
      result = core::sim_color_greedy_smp(*m, g, params);
    } else {
      core::MtaColorParams params;
      params.branch_avoiding = branch_avoiding;
      result = core::sim_color_greedy_mta(*m, g, params);
    }
    const double host_seconds = host_timer.seconds();
    colors = std::move(result.colors);
    rounds = result.rounds;
    AG_CHECK(graph::validate::is_proper_coloring(g, colors),
             "self-check failed (coloring not proper)");
    AG_CHECK(colors == reference, "self-check failed (!= sequential greedy)");
    const i64 palette =
        colors.empty() ? 0
                       : *std::max_element(colors.begin(), colors.end()) + 1;
    session.counter_add("color.palette", palette);
    finish_simulated(session, *m, prof, opts, host_seconds);
  } else {
    Timer timer;
    colors = core::color_greedy_seq(graph::CsrGraph::from_edges(g));
    std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
    AG_CHECK(graph::validate::is_proper_coloring(g, colors),
             "self-check failed (coloring not proper)");
    AG_CHECK(colors == reference, "self-check failed (!= sequential greedy)");
  }
  if (!json) {
    const i64 palette =
        colors.empty() ? 0
                       : *std::max_element(colors.begin(), colors.end()) + 1;
    std::cout << "colors:        " << palette
              << " (verified proper, == sequential greedy)\n";
    if (rounds >= 0) {
      std::cout << "rounds:        " << rounds << '\n';
    }
  }
  return 0;
}

int run_bfs(const Options& opts) {
  const graph::EdgeList g = load_graph(opts, nullptr);
  const std::string machine = opts.get("machine", "native");
  const auto procs = static_cast<u32>(opts.get_positive_int("procs", 4));
  const bool simulated = machine != "native";
  check_observability_flags(opts, simulated);
  const bool json = opts.has("json");
  if (!json) {
    std::cout << "BFS spanning forest: n=" << g.num_vertices()
              << " m=" << g.num_edges() << " machine=" << machine
              << " p=" << procs << '\n';
  }

  // Levels are exact BFS distances on every schedule; parents are
  // race-resolved, so they are validated structurally instead of compared.
  const core::BfsForest reference =
      core::bfs_tree_seq(graph::CsrGraph::from_edges(g));
  std::vector<NodeId> parent;
  std::vector<i64> level;
  i64 components = 0;
  i64 rounds = -1;
  if (simulated) {
    const sim::MachineSpec spec = parse_machine_opt(machine, procs);
    const std::string arch = sim::arch_name(spec.arch);
    obs::TraceSession session("bfs/tree/" + arch);
    obs::TraceSession::Install install(session);
    Profiling prof = Profiling::from_options(opts);
    std::unique_ptr<sim::Machine> m = sim::make_machine(spec);
    session.attach(*m, arch);
    prof.attach(*m, arch);
    Timer host_timer;
    core::SimBfsResult result = spec.arch == sim::MachineArch::kSmp
                                    ? core::sim_bfs_tree_smp(*m, g)
                                    : core::sim_bfs_tree_mta(*m, g);
    const double host_seconds = host_timer.seconds();
    AG_CHECK(graph::validate::is_bfs_forest(g, result.parent, result.level),
             "self-check failed (not a BFS forest)");
    AG_CHECK(result.level == reference.level,
             "self-check failed (levels != sequential BFS)");
    parent = std::move(result.parent);
    level = std::move(result.level);
    components = result.components;
    rounds = result.rounds;
    finish_simulated(session, *m, prof, opts, host_seconds);
  } else {
    Timer timer;
    core::BfsForest forest = core::bfs_tree_seq(graph::CsrGraph::from_edges(g));
    std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
    AG_CHECK(graph::validate::is_bfs_forest(g, forest.parent, forest.level),
             "self-check failed (not a BFS forest)");
    parent = std::move(forest.parent);
    level = std::move(forest.level);
    components = forest.components;
  }
  if (!json) {
    const i64 depth =
        level.empty() ? 0 : *std::max_element(level.begin(), level.end());
    std::cout << "components:    " << components
              << " (verified BFS forest, exact levels)\n"
              << "max depth:     " << depth << '\n';
    if (rounds >= 0) {
      std::cout << "rounds:        " << rounds << '\n';
    }
  }
  return 0;
}

int run_rank(const Options& opts) {
  const i64 n = opts.get_int("n", 1 << 20);
  const std::string layout = opts.get("layout", "random");
  const graph::LinkedList list =
      layout == "ordered"
          ? graph::ordered_list(n)
          : graph::random_list(n, static_cast<u64>(opts.get_int("seed", 1)));
  const std::string algorithm = opts.get("algorithm", "hj");
  const std::string machine = opts.get("machine", "native");
  const auto procs = static_cast<u32>(opts.get_positive_int("procs", 4));
  const bool simulated = machine != "native";
  check_observability_flags(opts, simulated);
  const bool json = opts.has("json");
  if (!json) {
    std::cout << "list ranking: n=" << n << " layout=" << layout
              << " algorithm=" << algorithm << " machine=" << machine
              << " p=" << procs << '\n';
  }

  std::vector<i64> ranks;
  if (simulated) {
    auto run_on = [&](sim::Machine& m) {
      if (algorithm == "walk") return core::sim_rank_list_walk(m, list);
      if (algorithm == "hj") return core::sim_rank_list_hj(m, list);
      if (algorithm == "wyllie") return core::sim_rank_list_wyllie(m, list);
      if (algorithm == "seq") return core::sim_rank_list_sequential(m, list);
      AG_CHECK(false, "unknown simulated --algorithm " + algorithm);
      return std::vector<i64>{};
    };
    const sim::MachineSpec spec = parse_machine_opt(machine, procs);
    const std::string arch = sim::arch_name(spec.arch);
    obs::TraceSession session("rank/" + algorithm + "/" + arch);
    obs::TraceSession::Install install(session);
    Profiling prof = Profiling::from_options(opts);
    std::unique_ptr<sim::Machine> m = sim::make_machine(spec);
    session.attach(*m, arch);
    prof.attach(*m, arch);
    Timer host_timer;
    ranks = run_on(*m);
    const double host_seconds = host_timer.seconds();
    AG_CHECK(ranks == core::rank_sequential(list), "self-check failed");
    finish_simulated(session, *m, prof, opts, host_seconds);
  } else {
    rt::ThreadPool pool(static_cast<usize>(procs));
    Timer timer;
    if (algorithm == "seq") {
      ranks = core::rank_sequential(list);
    } else if (algorithm == "wyllie") {
      ranks = core::rank_wyllie(pool, list);
    } else if (algorithm == "hj") {
      ranks = core::rank_helman_jaja(pool, list);
    } else if (algorithm == "compaction") {
      ranks = core::rank_by_compaction(pool, list);
    } else {
      AG_CHECK(false, "unknown --algorithm " + algorithm);
    }
    std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
    AG_CHECK(ranks == core::rank_sequential(list), "self-check failed");
  }
  if (!json) {
    std::cout << "verified against the sequential ranking\n";
  }
  return 0;
}

int run_msf(const Options& opts) {
  std::optional<std::vector<i64>> file_weights;
  const graph::EdgeList g = load_graph(opts, &file_weights);
  const std::vector<i64> weights =
      file_weights.has_value()
          ? *file_weights
          : core::unique_random_weights(g.num_edges(),
                                        static_cast<u64>(
                                            opts.get_int("seed", 1)));
  const std::string algorithm = opts.get("algorithm", "boruvka-par");
  check_observability_flags(opts, /*simulated=*/false);
  std::cout << "minimum spanning forest: n=" << g.num_vertices()
            << " m=" << g.num_edges() << " algorithm=" << algorithm << '\n';

  rt::ThreadPool pool(static_cast<usize>(opts.get_positive_int("procs", 4)));
  Timer timer;
  core::MsfResult result;
  if (algorithm == "kruskal") {
    result = core::msf_kruskal(g, weights);
  } else if (algorithm == "boruvka") {
    result = core::msf_boruvka(g, weights);
  } else if (algorithm == "boruvka-par") {
    result = core::msf_boruvka_parallel(pool, g, weights);
  } else {
    AG_CHECK(false, "unknown --algorithm " + algorithm);
  }
  std::cout << "wall time:     " << timer.seconds() * 1e3 << " ms\n";
  AG_CHECK(core::is_minimum_spanning_forest(g, weights, result),
           "self-check failed");
  std::cout << "forest edges:  " << result.edge_ids.size()
            << ", total weight " << result.total_weight
            << " (verified against Kruskal)\n";
  return 0;
}

/// `--list`: the simulator kernels (from the sweep registry, so this listing
/// and archgraph_sweep's can never drift apart) and the machine presets.
int run_list() {
  std::cout << "simulated kernels (sweep registry):\n"
            << sweep::kernel_listing();
  std::cout << "\nmachine presets (compose overrides as "
               "preset:key=value,...):\n"
            << "  mta         Cray MTA-2, 220 MHz, 128 streams/processor, "
               "hashed flat memory\n"
            << "  smp         Sun E4500-class SMP, 400 MHz, L1/L2 caches, "
               "shared bus\n"
            << "  gpu         SIMT accelerator, 1 GHz, 32-lane warps, "
               "coalesced global memory\n";
  return 0;
}

int run_gen(const Options& opts) {
  check_observability_flags(opts, /*simulated=*/false);
  const graph::EdgeList g = load_graph(opts, nullptr);
  const std::string output = opts.get("output", "");
  AG_CHECK(!output.empty(), "gen needs --output FILE");
  graph::write_dimacs_file(output, g, nullptr, "generated by archgraph_cli");
  std::cout << "wrote " << output << " (n=" << g.num_vertices()
            << ", m=" << g.num_edges() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse(argc, argv);
    if (opts.command == "cc") return run_cc(opts);
    if (opts.command == "rank") return run_rank(opts);
    if (opts.command == "msf") return run_msf(opts);
    if (opts.command == "color") return run_color(opts);
    if (opts.command == "bfs") return run_bfs(opts);
    if (opts.command == "gen") return run_gen(opts);
    if (opts.command == "--list" || opts.command == "list") return run_list();
    AG_CHECK(false, "unknown command '" + opts.command + "'");
  } catch (const std::exception& e) {
    std::cerr << "archgraph_cli: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
