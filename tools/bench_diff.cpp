// bench_diff — compare two BENCH_host_sim.json files (bench/micro_sim_hotpath
// with ARCHGRAPH_BENCH_JSON set) and print the per-series speedup table.
//
// Usage:
//   bench_diff BEFORE.json AFTER.json [--min-speedup X --series PREFIX]
//              [--json OUT]
//
// Each record is matched by its "benchmark" name; speedup is
// before.seconds / after.seconds, so >1 means AFTER is faster. Series
// present on only one side are listed (and fail the run: a renamed series
// would otherwise silently drop out of a perf gate). With --min-speedup,
// every matched series whose name starts with PREFIX (default: all) must
// reach X or the exit code is 1 — the hook ci_smoke.sh uses to gate the
// hot-loop work without hard-coding host-dependent absolute times.
//
// --json OUT additionally writes the comparison as one machine-readable
// JSON document (per-series before/after/speedup plus the ok verdict), so a
// CI job can archive the diff next to its BENCH_*.json artifacts.
//
// Host timings on shared runners are noisy; this tool compares whatever
// numbers it is given and leaves repetition/min-of-N policy to the caller.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace {

using archgraph::obs::JsonValue;

struct Series {
  std::string name;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
};

std::vector<Series> load(const std::string& path) {
  std::ifstream in(path);
  AG_CHECK(static_cast<bool>(in), "cannot open bench json '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  std::string error;
  AG_CHECK(archgraph::obs::json_parse(buf.str(), &doc, &error),
           "'" + path + "' is not valid JSON: " + error);
  const JsonValue* bench = doc.find("bench");
  AG_CHECK(bench != nullptr && bench->is_string() &&
               bench->as_string() == "host_sim",
           "'" + path + "' is not a BENCH_host_sim.json document");
  const JsonValue* records = doc.find("records");
  AG_CHECK(records != nullptr && records->is_array(),
           "'" + path + "' has no records array");
  std::vector<Series> out;
  for (const JsonValue& r : records->items()) {
    const JsonValue* name = r.find("benchmark");
    const JsonValue* seconds = r.find("seconds");
    const JsonValue* rate = r.find("ops_per_sec");
    AG_CHECK(name != nullptr && name->is_string() && seconds != nullptr &&
                 seconds->is_number() && rate != nullptr && rate->is_number(),
             "'" + path + "' record missing benchmark/seconds/ops_per_sec");
    out.push_back(Series{name->as_string(), seconds->as_f64(),
                         rate->as_f64()});
  }
  return out;
}

const Series* find(const std::vector<Series>& v, const std::string& name) {
  for (const Series& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> paths;
  std::optional<double> min_speedup;
  std::string series_prefix;
  std::string json_path;
  for (archgraph::usize i = 0; i < args.size(); ++i) {
    if (args[i] == "--min-speedup") {
      AG_CHECK(i + 1 < args.size(), "--min-speedup needs a value");
      min_speedup = archgraph::parse_f64("--min-speedup", args[++i]);
    } else if (args[i] == "--series") {
      AG_CHECK(i + 1 < args.size(), "--series needs a name prefix");
      series_prefix = args[++i];
    } else if (args[i] == "--json") {
      AG_CHECK(i + 1 < args.size(), "--json needs an output file");
      json_path = args[++i];
    } else {
      AG_CHECK(args[i].rfind("--", 0) != 0,
               "unknown flag '" + args[i] +
                   "' (valid: --min-speedup X, --series PREFIX, --json OUT)");
      paths.push_back(args[i]);
    }
  }
  AG_CHECK(paths.size() == 2,
           "usage: bench_diff BEFORE.json AFTER.json "
           "[--min-speedup X --series PREFIX] [--json OUT]");

  const std::vector<Series> before = load(paths[0]);
  const std::vector<Series> after = load(paths[1]);

  archgraph::Table table({"benchmark", "before_s", "after_s", "speedup"}, 3);
  struct Row {
    std::string name;
    double before_s = 0.0;
    double after_s = 0.0;
    double speedup = 0.0;
  };
  std::vector<Row> rows;
  std::vector<std::string> only_before, only_after;
  bool missing = false;
  bool below = false;
  for (const Series& b : before) {
    const Series* a = find(after, b.name);
    if (a == nullptr) {
      std::cerr << "bench_diff: '" << b.name << "' only in " << paths[0]
                << "\n";
      only_before.push_back(b.name);
      missing = true;
      continue;
    }
    const double speedup = b.seconds / a->seconds;
    table.row().add(b.name).add(b.seconds).add(a->seconds).add(speedup);
    rows.push_back(Row{b.name, b.seconds, a->seconds, speedup});
    if (min_speedup.has_value() &&
        b.name.rfind(series_prefix, 0) == 0 && speedup < *min_speedup) {
      std::cerr << "bench_diff: '" << b.name << "' speedup "
                << speedup << " below --min-speedup " << *min_speedup << "\n";
      below = true;
    }
  }
  for (const Series& a : after) {
    if (find(before, a.name) == nullptr) {
      std::cerr << "bench_diff: '" << a.name << "' only in " << paths[1]
                << "\n";
      only_after.push_back(a.name);
      missing = true;
    }
  }
  std::cout << table;
  if (!json_path.empty()) {
    archgraph::obs::JsonWriter w;
    w.begin_object()
        .field("tool", "bench_diff")
        .field("before", paths[0])
        .field("after", paths[1]);
    w.key("series").begin_array();
    for (const Row& r : rows) {
      w.begin_object()
          .field("benchmark", r.name)
          .field("before_seconds", r.before_s)
          .field("after_seconds", r.after_s)
          .field("speedup", r.speedup)
          .end_object();
    }
    w.end_array();
    w.key("only_before").begin_array();
    for (const std::string& name : only_before) w.value(name);
    w.end_array();
    w.key("only_after").begin_array();
    for (const std::string& name : only_after) w.value(name);
    w.end_array();
    w.field("ok", !(missing || below)).end_object();
    std::ofstream json_out(json_path);
    AG_CHECK(json_out.good(), "cannot write --json file " + json_path);
    json_out << w.take() << '\n';
    json_out.flush();
    AG_CHECK(json_out.good(), "short write to --json file " + json_path);
  }
  return (missing || below) ? 1 : 0;
}
