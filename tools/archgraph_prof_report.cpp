// archgraph_prof_report — render an interval-profiler Chrome trace (written
// by `archgraph_cli --profile-trace` or `archgraph_sweep run --profile-dir`)
// as terminal tables: the top-N hottest labeled memory regions with their
// address-bucket heatmaps, and a sparkline per counter track showing how the
// machine behaved over simulated time.
//
// Usage:
//   archgraph_prof_report TRACE.json [--top N] [--width W] [--all-series]
//
// TRACE.json is a Chrome trace-event document; the compact profile summary
// is read from its top-level "archgraph_profile" key and the counter
// timelines from its ph:"C" events. A bare profile object (the "profile"
// member of `archgraph_cli --json` output) also works — the tool then has no
// timelines and prints only the region table.
//
// Per-processor series (p0.issued, p1.barrier_wait, ...) are summarized as
// one aggregate row unless --all-series is given — an MTA run has 40 of
// them, which would drown the table.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"
#include "obs/prof/prof.hpp"

namespace {

using namespace archgraph;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AG_CHECK(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

i64 int_member(const obs::JsonValue& object, std::string_view key,
               i64 fallback = 0) {
  const obs::JsonValue* v = object.find(key);
  return v != nullptr && v->is_integer() ? v->as_i64() : fallback;
}

double num_member(const obs::JsonValue& object, std::string_view key,
                  double fallback = 0.0) {
  const obs::JsonValue* v = object.find(key);
  return v != nullptr && v->is_number() ? v->as_f64() : fallback;
}

std::string str_member(const obs::JsonValue& object, std::string_view key,
                       const std::string& fallback = "") {
  const obs::JsonValue* v = object.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

/// Averages `values` down to at most `width` buckets for a terminal-width
/// sparkline; short series pass through.
std::vector<double> downsample(const std::vector<double>& values,
                               usize width) {
  if (values.size() <= width || width == 0) {
    return values;
  }
  std::vector<double> out(width, 0.0);
  std::vector<i64> counts(width, 0);
  for (usize i = 0; i < values.size(); ++i) {
    const usize b = i * width / values.size();
    out[b] += values[i];
    ++counts[b];
  }
  for (usize b = 0; b < width; ++b) {
    if (counts[b] > 0) out[b] /= static_cast<double>(counts[b]);
  }
  return out;
}

/// One counter track reconstructed from the trace's ph:"C" events, in
/// emission (= simulated-time) order.
struct Track {
  std::vector<double> values;
  double min() const {
    return values.empty() ? 0.0 : *std::min_element(values.begin(),
                                                    values.end());
  }
  double max() const {
    return values.empty() ? 0.0 : *std::max_element(values.begin(),
                                                    values.end());
  }
  double mean() const {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  }
};

bool is_per_processor(const std::string& name) {
  if (name.empty() || name[0] != 'p') return false;
  const usize dot = name.find('.');
  if (dot == std::string::npos || dot == 1) return false;
  for (usize i = 1; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

int run(const std::string& path, i64 top, usize width, bool all_series) {
  const std::string text = read_file(path);
  obs::JsonValue doc;
  std::string error;
  AG_CHECK(obs::json_parse(text, &doc, &error),
           path + " is not valid JSON: " + error);
  AG_CHECK(doc.is_object(), path + " is not a JSON object");

  // Chrome trace with the summary spliced in, or a bare profile object.
  const obs::JsonValue* profile = doc.find("archgraph_profile");
  if (profile == nullptr) {
    profile = doc.find("regions") != nullptr ? &doc : nullptr;
  }
  AG_CHECK(profile != nullptr,
           path + " has neither \"archgraph_profile\" nor a profile object");

  std::cout << "machine:  " << str_member(*profile, "machine", "?") << "  ("
            << int_member(*profile, "processors") << " processors, "
            << num_member(*profile, "clock_hz") / 1e6 << " MHz)\n"
            << "sampling: " << int_member(*profile, "samples")
            << " samples, final interval "
            << int_member(*profile, "interval") << " cycles\n\n";

  // ---- top-N hottest labeled regions --------------------------------------
  const obs::JsonValue* regions = profile->find("regions");
  std::vector<const obs::JsonValue*> rows;
  if (regions != nullptr && regions->is_array()) {
    for (const obs::JsonValue& r : regions->items()) {
      rows.push_back(&r);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const obs::JsonValue* a, const obs::JsonValue* b) {
              return int_member(*a, "accesses") > int_member(*b, "accesses");
            });
  if (rows.size() > static_cast<usize>(top)) {
    rows.resize(static_cast<usize>(top));
  }

  Table region_table({"region", "words", "accesses", "reads", "writes",
                      "rmws", "miss%", "heat"},
                     /*double_precision=*/2);
  for (const obs::JsonValue* r : rows) {
    const obs::JsonValue* miss = r->find("miss_rate");
    std::vector<double> heat;
    if (const obs::JsonValue* h = r->find("heat");
        h != nullptr && h->is_array()) {
      for (const obs::JsonValue& v : h->items()) {
        heat.push_back(v.as_f64());
      }
    }
    region_table.row()
        .add(str_member(*r, "name", "?"))
        .add(int_member(*r, "words"))
        .add(int_member(*r, "accesses"))
        .add(int_member(*r, "reads"))
        .add(int_member(*r, "writes"))
        .add(int_member(*r, "rmws"));
    if (miss != nullptr && miss->is_number()) {
      region_table.add(100.0 * miss->as_f64());
    } else {
      region_table.add("-");
    }
    region_table.add(obs::prof::sparkline(downsample(heat, width)));
  }
  std::cout << "hottest regions (top " << rows.size() << " by accesses):\n"
            << region_table.to_text() << '\n';

  // ---- counter tracks over time -------------------------------------------
  const obs::JsonValue* events = doc.find("traceEvents");
  std::map<std::string, Track> tracks;  // sorted: stable row order
  std::vector<std::string> order;
  if (events != nullptr && events->is_array()) {
    for (const obs::JsonValue& e : events->items()) {
      if (!e.is_object() || str_member(e, "ph") != "C") continue;
      const std::string name = str_member(e, "name", "?");
      const obs::JsonValue* args = e.find("args");
      if (args == nullptr) continue;
      if (tracks.find(name) == tracks.end()) order.push_back(name);
      tracks[name].values.push_back(num_member(*args, "value"));
    }
  }
  if (tracks.empty()) {
    std::cout << "(no counter tracks — bare profile object, no timeline)\n";
    return 0;
  }

  Table track_table({"counter", "min", "mean", "max", "over time"},
                    /*double_precision=*/2);
  usize per_proc = 0;
  for (const std::string& name : order) {
    if (!all_series && is_per_processor(name)) {
      ++per_proc;
      continue;
    }
    const Track& t = tracks[name];
    track_table.row()
        .add(name)
        .add(t.min())
        .add(t.mean())
        .add(t.max())
        .add(obs::prof::sparkline(downsample(t.values, width)));
  }
  std::cout << "counter tracks over simulated time:\n"
            << track_table.to_text();
  if (per_proc > 0) {
    std::cout << "(" << per_proc
              << " per-processor tracks hidden; --all-series shows them)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string path;
    i64 top = 10;
    usize width = 48;
    bool all_series = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--top") {
        AG_CHECK(i + 1 < argc, "--top needs a count");
        top = parse_positive_i64("--top", argv[++i]);
      } else if (arg == "--width") {
        AG_CHECK(i + 1 < argc, "--width needs a column count");
        width = static_cast<usize>(parse_positive_i64("--width", argv[++i]));
      } else if (arg == "--all-series") {
        all_series = true;
      } else {
        AG_CHECK(arg.rfind("--", 0) != 0, "unknown flag '" + arg + "'");
        AG_CHECK(path.empty(), "one TRACE.json at a time");
        path = arg;
      }
    }
    AG_CHECK(!path.empty(),
             "usage: archgraph_prof_report TRACE.json [--top N] [--width W] "
             "[--all-series]");
    return run(path, top, width, all_series);
  } catch (const std::exception& e) {
    std::cerr << "archgraph_prof_report: " << e.what() << '\n';
    return 1;
  }
}
