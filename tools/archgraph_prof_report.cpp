// archgraph_prof_report — render an interval-profiler Chrome trace (written
// by `archgraph_cli --profile-trace` or `archgraph_sweep run --profile-dir`)
// as terminal tables: the top-N hottest labeled memory regions with their
// address-bucket heatmaps, and a sparkline per counter track showing how the
// machine behaved over simulated time.
//
// Usage:
//   archgraph_prof_report TRACE.json [--top N] [--width W] [--all-series]
//                                    [--csv FILE]
//
// TRACE.json is a Chrome trace-event document; the compact profile summary
// is read from its top-level "archgraph_profile" key and the counter
// timelines from its ph:"C" events. Multi-argument counter events (the
// stacked "cycle_accounting" track) expand to one sub-track per argument
// ("cycle_accounting.issued", ...). The profile's "cycle_accounting" object
// renders as a stacked composition bar plus a per-category table. A bare
// profile object (the "profile" member of `archgraph_cli --json` output)
// also works — the tool then has no timelines and prints only the region
// and accounting tables.
//
// --csv FILE writes everything the report prints as long-format CSV
// (section,name,key,value): one row per counter-track sample, per region
// metric, and per cycle-accounting category (slots and share).
//
// Per-processor series (p0.issued, p1.barrier_wait, ...) are summarized as
// one aggregate row unless --all-series is given — an MTA run has 40 of
// them, which would drown the table.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"
#include "obs/prof/prof.hpp"

namespace {

using namespace archgraph;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AG_CHECK(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

i64 int_member(const obs::JsonValue& object, std::string_view key,
               i64 fallback = 0) {
  const obs::JsonValue* v = object.find(key);
  return v != nullptr && v->is_integer() ? v->as_i64() : fallback;
}

double num_member(const obs::JsonValue& object, std::string_view key,
                  double fallback = 0.0) {
  const obs::JsonValue* v = object.find(key);
  return v != nullptr && v->is_number() ? v->as_f64() : fallback;
}

std::string str_member(const obs::JsonValue& object, std::string_view key,
                       const std::string& fallback = "") {
  const obs::JsonValue* v = object.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

/// Averages `values` down to at most `width` buckets for a terminal-width
/// sparkline; short series pass through.
std::vector<double> downsample(const std::vector<double>& values,
                               usize width) {
  if (values.size() <= width || width == 0) {
    return values;
  }
  std::vector<double> out(width, 0.0);
  std::vector<i64> counts(width, 0);
  for (usize i = 0; i < values.size(); ++i) {
    const usize b = i * width / values.size();
    out[b] += values[i];
    ++counts[b];
  }
  for (usize b = 0; b < width; ++b) {
    if (counts[b] > 0) out[b] /= static_cast<double>(counts[b]);
  }
  return out;
}

/// One counter track reconstructed from the trace's ph:"C" events, in
/// emission (= simulated-time) order.
struct Track {
  std::vector<double> ts;  // event timestamps (trace microseconds)
  std::vector<double> values;
  double min() const {
    return values.empty() ? 0.0 : *std::min_element(values.begin(),
                                                    values.end());
  }
  double max() const {
    return values.empty() ? 0.0 : *std::max_element(values.begin(),
                                                    values.end());
  }
  double mean() const {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  }
};

/// Distinct fill glyphs for the stacked composition bar, assigned to the
/// nonzero categories in declaration order.
constexpr const char* kBarGlyphs[] = {"█", "▓", "▒", "░", "▚", "▞",
                                      "▤", "▥", "▦", "▧", "▨", "▩"};
constexpr usize kBarGlyphCount = std::size(kBarGlyphs);

/// CSV-quotes a cell when needed (names are controlled, but be safe).
std::string csv_cell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Long-format CSV export of everything the report prints: counter-track
/// samples (key = trace timestamp), per-region numeric metrics, and the
/// cycle-accounting categories (slots and share rows).
void write_csv(const std::string& path,
               const std::vector<std::string>& order,
               const std::map<std::string, Track>& tracks,
               const std::vector<const obs::JsonValue*>& regions,
               const obs::JsonValue* acct) {
  std::ofstream out(path);
  AG_CHECK(out.good(), "cannot write --csv file " + path);
  out << "section,name,key,value\n";
  for (const std::string& name : order) {
    const Track& t = tracks.at(name);
    for (usize i = 0; i < t.values.size(); ++i) {
      out << "track," << csv_cell(name) << ','
          << (i < t.ts.size() ? t.ts[i] : 0.0) << ',' << t.values[i] << '\n';
    }
  }
  for (const obs::JsonValue* r : regions) {
    const std::string name = str_member(*r, "name", "?");
    for (const auto& [key, v] : r->members()) {
      if (!v.is_number()) continue;
      out << "region," << csv_cell(name) << ',' << csv_cell(key) << ','
          << v.as_f64() << '\n';
    }
  }
  if (acct != nullptr && acct->is_object()) {
    const obs::JsonValue* cats = acct->find("categories");
    const obs::JsonValue* shares = acct->find("shares");
    if (cats != nullptr && cats->is_object()) {
      for (const auto& [name, v] : cats->members()) {
        if (!v.is_number()) continue;
        out << "cycle_accounting," << csv_cell(name) << ",slots,"
            << v.as_f64() << '\n';
      }
    }
    if (shares != nullptr && shares->is_object()) {
      for (const auto& [name, v] : shares->members()) {
        if (!v.is_number()) continue;
        out << "cycle_accounting," << csv_cell(name) << ",share,"
            << v.as_f64() << '\n';
      }
    }
  }
  out.flush();
  AG_CHECK(out.good(), "short write to --csv file " + path);
  std::cout << "csv -> " << path << '\n';
}

bool is_per_processor(const std::string& name) {
  if (name.empty() || name[0] != 'p') return false;
  const usize dot = name.find('.');
  if (dot == std::string::npos || dot == 1) return false;
  for (usize i = 1; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

int run(const std::string& path, i64 top, usize width, bool all_series,
        const std::string& csv_path) {
  const std::string text = read_file(path);
  obs::JsonValue doc;
  std::string error;
  AG_CHECK(obs::json_parse(text, &doc, &error),
           path + " is not valid JSON: " + error);
  AG_CHECK(doc.is_object(), path + " is not a JSON object");

  // Chrome trace with the summary spliced in, or a bare profile object.
  const obs::JsonValue* profile = doc.find("archgraph_profile");
  if (profile == nullptr) {
    profile = doc.find("regions") != nullptr ? &doc : nullptr;
  }
  AG_CHECK(profile != nullptr,
           path + " has neither \"archgraph_profile\" nor a profile object");

  std::cout << "machine:  " << str_member(*profile, "machine", "?") << "  ("
            << int_member(*profile, "processors") << " processors, "
            << num_member(*profile, "clock_hz") / 1e6 << " MHz)\n"
            << "sampling: " << int_member(*profile, "samples")
            << " samples, final interval "
            << int_member(*profile, "interval") << " cycles\n\n";

  // ---- top-N hottest labeled regions --------------------------------------
  const obs::JsonValue* regions = profile->find("regions");
  std::vector<const obs::JsonValue*> rows;
  if (regions != nullptr && regions->is_array()) {
    for (const obs::JsonValue& r : regions->items()) {
      rows.push_back(&r);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const obs::JsonValue* a, const obs::JsonValue* b) {
              return int_member(*a, "accesses") > int_member(*b, "accesses");
            });
  const std::vector<const obs::JsonValue*> all_rows = rows;  // for --csv
  if (rows.size() > static_cast<usize>(top)) {
    rows.resize(static_cast<usize>(top));
  }

  Table region_table({"region", "words", "accesses", "reads", "writes",
                      "rmws", "miss%", "heat"},
                     /*double_precision=*/2);
  for (const obs::JsonValue* r : rows) {
    const obs::JsonValue* miss = r->find("miss_rate");
    std::vector<double> heat;
    if (const obs::JsonValue* h = r->find("heat");
        h != nullptr && h->is_array()) {
      for (const obs::JsonValue& v : h->items()) {
        heat.push_back(v.as_f64());
      }
    }
    region_table.row()
        .add(str_member(*r, "name", "?"))
        .add(int_member(*r, "words"))
        .add(int_member(*r, "accesses"))
        .add(int_member(*r, "reads"))
        .add(int_member(*r, "writes"))
        .add(int_member(*r, "rmws"));
    if (miss != nullptr && miss->is_number()) {
      region_table.add(100.0 * miss->as_f64());
    } else {
      region_table.add("-");
    }
    region_table.add(obs::prof::sparkline(downsample(heat, width)));
  }
  std::cout << "hottest regions (top " << rows.size() << " by accesses):\n"
            << region_table.to_text() << '\n';

  // ---- cycle accounting: where every processor-cycle slot went ------------
  const obs::JsonValue* acct = profile->find("cycle_accounting");
  if (acct != nullptr && acct->is_object()) {
    std::cout << "cycle accounting: " << int_member(*acct, "slots")
              << " slots = " << int_member(*acct, "processors")
              << " processors x " << int_member(*acct, "cycles")
              << " cycles\n";
    const obs::JsonValue* shares = acct->find("shares");
    const obs::JsonValue* cats = acct->find("categories");
    if (shares != nullptr && shares->is_object() && cats != nullptr &&
        cats->is_object()) {
      // One 100%-stacked bar: each nonzero category fills its share of the
      // width with a distinct glyph; cumulative rounding partitions the
      // width exactly.
      std::string bar;
      Table acct_table({"", "category", "slots", "share%", ""},
                       /*double_precision=*/2);
      usize glyph = 0;
      usize cells_done = 0;
      double cum = 0.0;
      for (const auto& [name, v] : shares->members()) {
        const double share = v.is_number() ? v.as_f64() : 0.0;
        if (share <= 0.0) continue;
        const char* g = kBarGlyphs[glyph % kBarGlyphCount];
        ++glyph;
        cum += share;
        const usize cells_cum = std::min(
            width, static_cast<usize>(cum * static_cast<double>(width) + 0.5));
        for (usize c = cells_done; c < cells_cum; ++c) bar += g;
        cells_done = cells_cum;
        std::string mini;
        const usize mini_cells =
            static_cast<usize>(share * static_cast<double>(width) + 0.5);
        for (usize c = 0; c < mini_cells; ++c) mini += g;
        acct_table.row()
            .add(g)
            .add(name)
            .add(int_member(*cats, name))
            .add(100.0 * share)
            .add(mini);
      }
      std::cout << "  [" << bar << "]\n" << acct_table.to_text() << '\n';
    }
  }

  // ---- counter tracks over time -------------------------------------------
  // Multi-argument counter events (the stacked cycle_accounting track)
  // expand to one sub-track per argument: "<event name>.<arg name>".
  const obs::JsonValue* events = doc.find("traceEvents");
  std::map<std::string, Track> tracks;
  std::vector<std::string> order;
  if (events != nullptr && events->is_array()) {
    for (const obs::JsonValue& e : events->items()) {
      if (!e.is_object() || str_member(e, "ph") != "C") continue;
      const std::string name = str_member(e, "name", "?");
      const obs::JsonValue* args = e.find("args");
      if (args == nullptr || !args->is_object()) continue;
      const double ts = num_member(e, "ts");
      const bool single = args->members().size() == 1 &&
                          args->find("value") != nullptr;
      for (const auto& [key, v] : args->members()) {
        if (!v.is_number()) continue;
        const std::string track_name = single ? name : name + "." + key;
        if (tracks.find(track_name) == tracks.end()) {
          order.push_back(track_name);
        }
        Track& t = tracks[track_name];
        t.ts.push_back(ts);
        t.values.push_back(v.as_f64());
      }
    }
  }
  if (tracks.empty()) {
    std::cout << "(no counter tracks — bare profile object, no timeline)\n";
    if (!csv_path.empty()) {
      write_csv(csv_path, order, tracks, all_rows, acct);
    }
    return 0;
  }

  Table track_table({"counter", "min", "mean", "max", "over time"},
                    /*double_precision=*/2);
  usize per_proc = 0;
  for (const std::string& name : order) {
    if (!all_series && is_per_processor(name)) {
      ++per_proc;
      continue;
    }
    const Track& t = tracks[name];
    track_table.row()
        .add(name)
        .add(t.min())
        .add(t.mean())
        .add(t.max())
        .add(obs::prof::sparkline(downsample(t.values, width)));
  }
  std::cout << "counter tracks over simulated time:\n"
            << track_table.to_text();
  if (per_proc > 0) {
    std::cout << "(" << per_proc
              << " per-processor tracks hidden; --all-series shows them)\n";
  }
  if (!csv_path.empty()) {
    write_csv(csv_path, order, tracks, all_rows, acct);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string path;
    i64 top = 10;
    usize width = 48;
    bool all_series = false;
    std::string csv_path;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--top") {
        AG_CHECK(i + 1 < argc, "--top needs a count");
        top = parse_positive_i64("--top", argv[++i]);
      } else if (arg == "--width") {
        AG_CHECK(i + 1 < argc, "--width needs a column count");
        width = static_cast<usize>(parse_positive_i64("--width", argv[++i]));
      } else if (arg == "--all-series") {
        all_series = true;
      } else if (arg == "--csv") {
        AG_CHECK(i + 1 < argc, "--csv needs a file path");
        csv_path = argv[++i];
      } else {
        AG_CHECK(arg.rfind("--", 0) != 0, "unknown flag '" + arg + "'");
        AG_CHECK(path.empty(), "one TRACE.json at a time");
        path = arg;
      }
    }
    AG_CHECK(!path.empty(),
             "usage: archgraph_prof_report TRACE.json [--top N] [--width W] "
             "[--all-series] [--csv FILE]");
    return run(path, top, width, all_series, csv_path);
  } catch (const std::exception& e) {
    std::cerr << "archgraph_prof_report: " << e.what() << '\n';
    return 1;
  }
}
