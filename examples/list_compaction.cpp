// The paper's §6 future-work idea, demonstrated: rank a list by repeatedly
// compacting it to super-nodes, ranking the small list, and expanding back.
// "The compaction and expansion steps are parallel, O(n), and require little
// synchronization; thus, they increase parallelism while decreasing
// overhead."
//
// We show (a) correctness vs. the sequential ranking, (b) how the recursion
// shrinks the problem geometrically, and (c) a native timing comparison of
// the three parallel rankers on this host.
#include <algorithm>
#include <iostream>

#include "common/check.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/listrank/listrank.hpp"
#include "graph/linked_list.hpp"
#include "rt/thread_pool.hpp"

int main() {
  using namespace archgraph;

  const i64 n = 1 << 20;
  const graph::LinkedList list = graph::random_list(n, 99);
  rt::ThreadPool pool(4);

  // (a) correctness
  const auto reference = core::rank_sequential(list);
  core::CompactionParams params;
  params.compaction_ratio = 16;
  params.base_size = 4096;
  const auto compacted_ranks = core::rank_by_compaction(pool, list, params);
  std::cout << "compaction ranking of " << n << " nodes: "
            << (compacted_ranks == reference ? "correct" : "WRONG") << "\n";

  // (b) the recursion ladder
  std::cout << "\nrecursion ladder (ratio " << params.compaction_ratio
            << ", base " << params.base_size << "):\n";
  i64 level_size = n;
  int level = 0;
  while (level_size > params.base_size) {
    std::cout << "  level " << level++ << ": " << level_size << " nodes\n";
    level_size = std::max<i64>(2, level_size / params.compaction_ratio);
  }
  std::cout << "  level " << level << ": " << level_size
            << " nodes -> sequential base case\n\n";

  // (c) native timings (single-machine, informational)
  Table t({"algorithm", "seconds"}, 4);
  {
    Timer timer;
    auto r = core::rank_sequential(list);
    t.row().add("sequential pointer chase").add(timer.seconds());
    AG_CHECK(r == reference, "self-check");
  }
  {
    Timer timer;
    auto r = core::rank_helman_jaja(pool, list);
    t.row().add("Helman-JaJa").add(timer.seconds());
    AG_CHECK(r == reference, "self-check");
  }
  {
    Timer timer;
    auto r = core::rank_by_compaction(pool, list, params);
    t.row().add("recursive compaction").add(timer.seconds());
    AG_CHECK(r == reference, "self-check");
  }
  {
    Timer timer;
    auto r = core::rank_wyllie(pool, list);
    t.row().add("Wyllie pointer jumping (O(n log n) work)")
        .add(timer.seconds());
    AG_CHECK(r == reference, "self-check");
  }
  std::cout << t
            << "\n(Host timings; on this repo's single-core CI box the "
               "parallel rankers cannot beat\nthe sequential chase — the "
               "architecture comparison lives in the simulators. See\n"
               "bench/fig1_list_ranking.)\n";
  return 0;
}
