// Hierarchy analytics via the Euler-tour technique — the paper's §1 pitch
// ("list ranking is a key technique needed in parallel algorithms for ...
// computing the centroid of a tree, expression evaluation, minimum spanning
// forest ...") turned into a small end-to-end scenario:
//
//   1. build a weighted network and extract its minimum spanning forest
//      (parallel Borůvka);
//   2. root the biggest tree and compute parent/depth/preorder/subtree sizes
//      with ONE parallel list ranking over the Euler tour;
//   3. report hierarchy analytics: depth histogram, the centroid (the vertex
//      whose largest hanging subtree is minimal), and heavy-path heads.
#include <algorithm>
#include <iostream>
#include <map>

#include "common/check.hpp"
#include "common/table.hpp"
#include "core/concomp/concomp.hpp"
#include "core/euler/euler_tour.hpp"
#include "core/mst/mst.hpp"
#include "graph/generators.hpp"
#include "rt/thread_pool.hpp"

int main() {
  using namespace archgraph;
  rt::ThreadPool pool(4);

  // 1. Weighted network -> minimum spanning forest.
  const NodeId n = 1 << 14;
  const graph::EdgeList g = graph::random_graph(n, 6 * n, 0x77eeu);
  const std::vector<i64> weights = core::unique_random_weights(g.num_edges(),
                                                               0xbeefu);
  const core::MsfResult msf = core::msf_boruvka_parallel(pool, g, weights);
  AG_CHECK(core::is_minimum_spanning_forest(g, weights, msf),
           "Boruvka self-check failed");
  std::cout << "MSF of G(" << n << ", " << g.num_edges() << "): "
            << msf.edge_ids.size() << " edges, total weight "
            << msf.total_weight << "\n";

  // Keep the biggest tree (G(n, 6n) is almost surely connected; the code
  // does not rely on it).
  graph::EdgeList forest(n);
  for (const i64 id : msf.edge_ids) {
    forest.add_edge(g.edge(id).u, g.edge(id).v);
  }
  const auto labels = core::cc_union_find(forest);
  std::map<NodeId, i64> comp_size;
  for (const NodeId l : labels) ++comp_size[l];
  const auto giant = std::max_element(
      comp_size.begin(), comp_size.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  std::cout << "largest tree: " << giant->second << " vertices\n\n";
  AG_CHECK(giant->second == n, "example expects a connected G(n, 6n)");

  // 2. Tree functions via Euler tour + list ranking.
  const NodeId root = giant->first;
  const core::TreeFunctions f = core::tree_functions_euler(pool, forest, root);
  AG_CHECK(f.subtree_size[static_cast<usize>(root)] == giant->second,
           "tour did not cover the tree");

  // 3a. Depth histogram.
  std::map<i64, i64> by_depth;
  i64 max_depth = 0;
  for (NodeId v = 0; v < n; ++v) {
    ++by_depth[f.depth[static_cast<usize>(v)]];
    max_depth = std::max(max_depth, f.depth[static_cast<usize>(v)]);
  }
  Table depth_table({"depth", "vertices"});
  for (i64 d = 0; d <= std::min<i64>(max_depth, 7); ++d) {
    depth_table.row().add(d).add(by_depth[d]);
  }
  std::cout << "tree height " << max_depth << "; first depth levels:\n"
            << depth_table << '\n';

  // 3b. Centroid: the vertex minimizing the largest component left by its
  // removal — computable from subtree sizes alone. The pieces around v are
  // its children's subtrees and the "up" piece of n - size(v) vertices.
  std::vector<i64> max_child(static_cast<usize>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = f.parent[static_cast<usize>(v)];
    if (p != kNilNode) {
      max_child[static_cast<usize>(p)] = std::max(
          max_child[static_cast<usize>(p)],
          f.subtree_size[static_cast<usize>(v)]);
    }
  }
  NodeId centroid = root;
  i64 best_worst = n;
  for (NodeId v = 0; v < n; ++v) {
    const i64 worst = std::max(n - f.subtree_size[static_cast<usize>(v)],
                               max_child[static_cast<usize>(v)]);
    if (worst < best_worst) {
      best_worst = worst;
      centroid = v;
    }
  }
  AG_CHECK(best_worst <= n / 2, "centroid property violated");
  std::cout << "centroid: vertex " << centroid
            << " (largest remaining piece after removal: " << best_worst
            << " = " << 100.0 * static_cast<double>(best_worst) / n
            << "% of the tree)\n";

  // 3c. Heavy vertices: largest subtrees below the root.
  Table heavy({"vertex", "subtree size", "depth"});
  std::vector<NodeId> order(static_cast<usize>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<usize>(v)] = v;
  std::partial_sort(order.begin(), order.begin() + 6, order.end(),
                    [&](NodeId a, NodeId b) {
                      return f.subtree_size[static_cast<usize>(a)] >
                             f.subtree_size[static_cast<usize>(b)];
                    });
  for (int i = 1; i < 6; ++i) {  // skip the root itself
    const NodeId v = order[static_cast<usize>(i)];
    heavy.row()
        .add(static_cast<i64>(v))
        .add(f.subtree_size[static_cast<usize>(v)])
        .add(f.depth[static_cast<usize>(v)]);
  }
  std::cout << "\nheaviest non-root subtrees:\n" << heavy;
  return 0;
}
