// Network analysis scenario: connectivity structure of a synthetic social /
// communication network — the kind of sparse irregular workload the paper's
// introduction motivates.
//
// Pipeline: generate an R-MAT graph (power-law-ish, like real networks),
// find its connected components three ways (sequential union-find, parallel
// Shiloach-Vishkin, and SV on the simulated MTA), report the component-size
// distribution, then extract a spanning forest of the giant component.
#include <algorithm>
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "core/concomp/concomp.hpp"
#include "core/concomp/spanning_forest.hpp"
#include "core/experiment.hpp"
#include "core/kernels/kernels.hpp"
#include "graph/generators.hpp"
#include "rt/thread_pool.hpp"
#include "sim/machine_spec.hpp"

int main() {
  using namespace archgraph;

  const NodeId n = 1 << 15;
  const i64 m = 3 * n;  // sparse: average degree 6
  std::cout << "generating R-MAT network: n=" << n << " m=" << m << " ...\n";
  const graph::EdgeList g = graph::rmat_graph(n, m, 0.55, 0.2, 0.15, 7);

  // --- components, three ways ---------------------------------------------
  rt::ThreadPool pool(4);
  const auto seq_labels = core::cc_union_find(g);
  const auto par_labels = core::cc_shiloach_vishkin(pool, g);
  const auto mta = sim::make_machine("mta:procs=8");
  const auto sim_result = core::sim_cc_sv_mta(*mta, g);

  AG_CHECK(seq_labels == par_labels, "parallel SV disagrees with union-find");
  AG_CHECK(seq_labels == sim_result.labels, "simulated SV disagrees");
  std::cout << "all three implementations agree; simulated MTA (p=8) took "
            << mta->seconds() * 1e3 << " ms over " << sim_result.iterations
            << " SV iterations at " << 100.0 * mta->utilization()
            << "% utilization\n\n";

  // --- component-size distribution ----------------------------------------
  std::map<NodeId, i64> size_of;
  for (const NodeId label : seq_labels) {
    ++size_of[label];
  }
  std::map<i64, i64> histogram;  // size -> how many components of that size
  i64 giant = 0;
  NodeId giant_label = 0;
  for (const auto& [label, size] : size_of) {
    ++histogram[size];
    if (size > giant) {
      giant = size;
      giant_label = label;
    }
  }
  Table t({"component size", "count"});
  int rows = 0;
  for (auto it = histogram.rbegin(); it != histogram.rend() && rows < 8;
       ++it, ++rows) {
    t.row().add(it->first).add(it->second);
  }
  std::cout << "components: " << size_of.size() << " total, largest covers "
            << 100.0 * static_cast<double>(giant) / static_cast<double>(n)
            << "% of vertices\n"
            << t << '\n';

  // --- spanning forest of the whole network --------------------------------
  const core::SpanningForest forest = core::spanning_forest_sv(pool, g);
  AG_CHECK(core::is_spanning_forest(g, forest), "invalid spanning forest");
  i64 giant_tree_edges = 0;
  for (const graph::Edge& e : forest.edges) {
    if (seq_labels[static_cast<usize>(e.u)] == giant_label) {
      ++giant_tree_edges;
    }
  }
  std::cout << "spanning forest: " << forest.edges.size()
            << " edges total; the giant component's tree has "
            << giant_tree_edges << " edges (= size-1 = " << giant - 1
            << ")\n";
  return 0;
}
