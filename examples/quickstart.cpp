// Quickstart: the three things archgraph does, in ~60 lines.
//   1. Rank a linked list (sequential and parallel Helman–JáJá).
//   2. Find connected components of a random graph.
//   3. Run the same kernels on the simulated Cray MTA-2 and Sun SMP and
//      compare simulated times — the paper's experiment in miniature.
#include <iostream>

#include "core/concomp/concomp.hpp"
#include "core/experiment.hpp"
#include "core/kernels/kernels.hpp"
#include "core/listrank/listrank.hpp"
#include "graph/generators.hpp"
#include "graph/linked_list.hpp"
#include "graph/validate.hpp"
#include "rt/thread_pool.hpp"
#include "sim/machine_spec.hpp"

int main() {
  using namespace archgraph;

  // --- 1. list ranking, host-native --------------------------------------
  const i64 n = 100'000;
  const graph::LinkedList list = graph::random_list(n, /*seed=*/1);
  rt::ThreadPool pool(4);
  const std::vector<i64> ranks = core::rank_helman_jaja(pool, list);
  std::cout << "list ranking: ranked " << n << " nodes; head is at slot "
            << list.head << " (rank " << ranks[static_cast<usize>(list.head)]
            << "), valid = " << std::boolalpha
            << (ranks == core::rank_sequential(list)) << "\n";

  // --- 2. connected components, host-native ------------------------------
  const graph::EdgeList g = graph::random_graph(50'000, 120'000, /*seed=*/2);
  const std::vector<NodeId> labels = core::cc_shiloach_vishkin(pool, g);
  std::cout << "connected components: n=" << g.num_vertices()
            << " m=" << g.num_edges() << " -> "
            << graph::validate::count_distinct_labels(labels)
            << " components\n";

  // --- 3. the paper's comparison, simulated -------------------------------
  const graph::LinkedList small = graph::random_list(1 << 16, /*seed=*/3);

  // Machines come from specs: "<preset>[:key=value,...]" — see
  // sim/machine_spec.hpp for the full key tables.
  const auto mta = sim::make_machine("mta:procs=8");
  core::sim_rank_list_walk(*mta, small);

  const auto smp = sim::make_machine("smp:procs=8");
  core::sim_rank_list_hj(*smp, small);

  // Cycle accounting: every processor-cycle slot lands in one category, so
  // the gap between utilization and 100% has a named cause.
  const sim::CycleBreakdown& mb = mta->stats().breakdown;
  const sim::CycleBreakdown& sb = smp->stats().breakdown;
  std::cout << "simulated list ranking of a random " << (1 << 16)
            << "-node list, p=8:\n"
            << "  Cray MTA-2: " << mta->seconds() * 1e3 << " ms  (utilization "
            << 100.0 * mta->utilization() << "%, "
            << 100.0 * mb.share(sim::CycleCat::kNoReadyStream)
            << "% of slots waiting on memory)\n"
            << "  Sun SMP:    " << smp->seconds() * 1e3 << " ms  ("
            << 100.0 * sb.share(sim::CycleCat::kMemFillWait)
            << "% of slots waiting on cache fills)\n"
            << "  MTA advantage: " << smp->seconds() / mta->seconds() << "x\n";
  return 0;
}
