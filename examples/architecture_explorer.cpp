// Architecture explorer: run one kernel on BOTH simulated machines across a
// grid of architectural parameters and print what moves the needle.
//
// This is the paper's methodology turned into a tool: pick a workload, vary
// the machine, observe which architectural features (latency tolerance,
// caches, hashing, fine-grain sync) actually matter for irregular graph
// kernels.
//
// Usage: architecture_explorer [n]           (default n = 2^16)
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/kernels/kernels.hpp"
#include "graph/linked_list.hpp"
#include "sim/machine_spec.hpp"

int main(int argc, char** argv) {
  using namespace archgraph;
  const i64 n = argc > 1 ? std::atoll(argv[1]) : (1 << 16);
  AG_CHECK(n >= 16, "need a list of at least 16 nodes");

  const graph::LinkedList random_l = graph::random_list(n, 11);
  const graph::LinkedList ordered_l = graph::ordered_list(n);

  std::cout << "workload: list ranking, n = " << n
            << " (Random and Ordered layouts)\n\n";

  // Each grid point below is one machine-spec string — the same
  // "<preset>:key=value,..." syntax archgraph_cli's --machine flag takes, so
  // any row here can be re-run from the command line.

  // --- MTA: how many streams does latency tolerance need? -----------------
  {
    Table t({"streams/proc", "cycles", "utilization"}, 3);
    for (const u32 streams : {1u, 8u, 32u, 64u, 128u}) {
      const auto m = sim::make_machine("mta:procs=1,streams=" +
                                       std::to_string(streams));
      core::sim_rank_list_walk(*m, random_l);
      t.row().add(static_cast<i64>(streams)).add(m->cycles()).add(
          m->utilization());
    }
    std::cout << "--- MTA: streams per processor (latency tolerance is "
                 "parallelism) ---\n"
              << t << '\n';
  }

  // --- MTA: does memory latency even matter once you have streams? --------
  {
    Table t({"mem latency", "cycles (128 streams)", "cycles (4 streams)"}, 3);
    for (const sim::Cycle lat : {50, 100, 200, 400}) {
      auto run = [&](u32 streams) {
        const auto m = sim::make_machine(
            "mta:procs=1,latency=" + std::to_string(lat) +
            ",streams=" + std::to_string(streams));
        core::sim_rank_list_walk(*m, random_l);
        return m->cycles();
      };
      t.row().add(lat).add(run(128)).add(run(4));
    }
    std::cout << "--- MTA: latency is invisible at 128 streams, painful at 4 "
                 "---\n"
              << t << '\n';
  }

  // --- SMP: the same workload lives or dies by locality -------------------
  {
    Table t({"machine", "ordered ms", "random ms", "random/ordered"}, 3);
    for (const u32 p : {1u, 4u, 8u}) {
      const std::string spec = "smp:procs=" + std::to_string(p);
      const auto mo = sim::make_machine(spec);
      core::sim_rank_list_hj(*mo, ordered_l);
      const auto mr = sim::make_machine(spec);
      core::sim_rank_list_hj(*mr, random_l);
      t.row()
          .add("SMP p=" + std::to_string(p))
          .add(mo->seconds() * 1e3)
          .add(mr->seconds() * 1e3)
          .add(mr->seconds() / mo->seconds());
    }
    for (const u32 p : {1u, 8u}) {
      const std::string spec = "mta:procs=" + std::to_string(p);
      const auto mo = sim::make_machine(spec);
      core::sim_rank_list_walk(*mo, ordered_l);
      const auto mr = sim::make_machine(spec);
      core::sim_rank_list_walk(*mr, random_l);
      t.row()
          .add("MTA p=" + std::to_string(p))
          .add(mo->seconds() * 1e3)
          .add(mr->seconds() * 1e3)
          .add(mr->seconds() / mo->seconds());
    }
    std::cout << "--- Layout sensitivity: SMP pays for randomness, MTA does "
                 "not ---\n"
              << t << '\n';
  }

  // --- Cross-programming-model: each algorithm on the other machine -------
  {
    Table t({"program", "on MTA (ms)", "on SMP (ms)"}, 3);
    {
      const auto a = sim::make_machine("mta:procs=8");
      core::sim_rank_list_walk(*a, random_l);
      const auto b = sim::make_machine("smp:procs=8");
      core::WalkLrParams params;
      params.workers = 8;  // the SMP has no streams to absorb 1024 threads
      core::sim_rank_list_walk(*b, random_l, params);
      t.row()
          .add("walk-based (MTA style)")
          .add(a->seconds() * 1e3)
          .add(b->seconds() * 1e3);
    }
    {
      const auto a = sim::make_machine("mta:procs=8");
      core::HjLrParams params;
      params.threads = 1024;  // give the MTA enough threads to hide latency
      core::sim_rank_list_hj(*a, random_l, params);
      const auto b = sim::make_machine("smp:procs=8");
      core::sim_rank_list_hj(*b, random_l);
      t.row()
          .add("Helman-JaJa (SMP style)")
          .add(a->seconds() * 1e3)
          .add(b->seconds() * 1e3);
    }
    std::cout << "--- Algorithms must match their architecture (paper §4's "
                 "point) ---\n"
              << t;
  }
  return 0;
}
