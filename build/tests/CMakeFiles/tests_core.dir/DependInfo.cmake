
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cc_variants_test.cpp" "tests/CMakeFiles/tests_core.dir/core/cc_variants_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/cc_variants_test.cpp.o.d"
  "/root/repo/tests/core/concomp_test.cpp" "tests/CMakeFiles/tests_core.dir/core/concomp_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/concomp_test.cpp.o.d"
  "/root/repo/tests/core/differential_test.cpp" "tests/CMakeFiles/tests_core.dir/core/differential_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/differential_test.cpp.o.d"
  "/root/repo/tests/core/euler_tour_test.cpp" "tests/CMakeFiles/tests_core.dir/core/euler_tour_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/euler_tour_test.cpp.o.d"
  "/root/repo/tests/core/experiment_test.cpp" "tests/CMakeFiles/tests_core.dir/core/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/expression_test.cpp" "tests/CMakeFiles/tests_core.dir/core/expression_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/expression_test.cpp.o.d"
  "/root/repo/tests/core/kernels_baseline_test.cpp" "tests/CMakeFiles/tests_core.dir/core/kernels_baseline_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/kernels_baseline_test.cpp.o.d"
  "/root/repo/tests/core/kernels_cc_test.cpp" "tests/CMakeFiles/tests_core.dir/core/kernels_cc_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/kernels_cc_test.cpp.o.d"
  "/root/repo/tests/core/kernels_lr_test.cpp" "tests/CMakeFiles/tests_core.dir/core/kernels_lr_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/kernels_lr_test.cpp.o.d"
  "/root/repo/tests/core/listrank_test.cpp" "tests/CMakeFiles/tests_core.dir/core/listrank_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/listrank_test.cpp.o.d"
  "/root/repo/tests/core/mst_test.cpp" "tests/CMakeFiles/tests_core.dir/core/mst_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/mst_test.cpp.o.d"
  "/root/repo/tests/core/prefix_list_test.cpp" "tests/CMakeFiles/tests_core.dir/core/prefix_list_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/prefix_list_test.cpp.o.d"
  "/root/repo/tests/core/spanning_forest_test.cpp" "tests/CMakeFiles/tests_core.dir/core/spanning_forest_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/spanning_forest_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
