file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/cc_variants_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/cc_variants_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/concomp_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/concomp_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/differential_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/differential_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/euler_tour_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/euler_tour_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/experiment_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/experiment_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/expression_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/expression_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/kernels_baseline_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/kernels_baseline_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/kernels_cc_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/kernels_cc_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/kernels_lr_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/kernels_lr_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/listrank_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/listrank_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/mst_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/mst_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/prefix_list_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/prefix_list_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/spanning_forest_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/spanning_forest_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
