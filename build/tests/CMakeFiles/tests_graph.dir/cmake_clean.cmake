file(REMOVE_RECURSE
  "CMakeFiles/tests_graph.dir/graph/csr_graph_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph/csr_graph_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph/edge_list_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph/edge_list_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph/generators_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph/generators_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph/io_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph/io_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph/linked_list_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph/linked_list_test.cpp.o.d"
  "CMakeFiles/tests_graph.dir/graph/validate_test.cpp.o"
  "CMakeFiles/tests_graph.dir/graph/validate_test.cpp.o.d"
  "tests_graph"
  "tests_graph.pdb"
  "tests_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
