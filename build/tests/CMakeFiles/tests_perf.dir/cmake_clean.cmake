file(REMOVE_RECURSE
  "CMakeFiles/tests_perf.dir/perf/cost_model_test.cpp.o"
  "CMakeFiles/tests_perf.dir/perf/cost_model_test.cpp.o.d"
  "tests_perf"
  "tests_perf.pdb"
  "tests_perf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
