
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cache_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim/cache_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim/cache_test.cpp.o.d"
  "/root/repo/tests/sim/cross_machine_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim/cross_machine_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim/cross_machine_test.cpp.o.d"
  "/root/repo/tests/sim/memory_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim/memory_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim/memory_test.cpp.o.d"
  "/root/repo/tests/sim/model_properties_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim/model_properties_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim/model_properties_test.cpp.o.d"
  "/root/repo/tests/sim/mta_machine_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim/mta_machine_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim/mta_machine_test.cpp.o.d"
  "/root/repo/tests/sim/smp_machine_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim/smp_machine_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim/smp_machine_test.cpp.o.d"
  "/root/repo/tests/sim/task_test.cpp" "tests/CMakeFiles/tests_sim.dir/sim/task_test.cpp.o" "gcc" "tests/CMakeFiles/tests_sim.dir/sim/task_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
