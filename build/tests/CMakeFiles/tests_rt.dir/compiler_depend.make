# Empty compiler generated dependencies file for tests_rt.
# This may be replaced when dependencies are built.
