file(REMOVE_RECURSE
  "CMakeFiles/tests_rt.dir/rt/barrier_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/barrier_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/parallel_for_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/parallel_for_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/prefix_sum_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/prefix_sum_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/thread_pool_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/thread_pool_test.cpp.o.d"
  "tests_rt"
  "tests_rt.pdb"
  "tests_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
