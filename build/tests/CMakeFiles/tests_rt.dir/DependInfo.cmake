
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rt/barrier_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/barrier_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/barrier_test.cpp.o.d"
  "/root/repo/tests/rt/parallel_for_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/parallel_for_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/parallel_for_test.cpp.o.d"
  "/root/repo/tests/rt/prefix_sum_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/prefix_sum_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/prefix_sum_test.cpp.o.d"
  "/root/repo/tests/rt/thread_pool_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
