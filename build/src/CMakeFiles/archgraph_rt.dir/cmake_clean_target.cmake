file(REMOVE_RECURSE
  "libarchgraph_rt.a"
)
