file(REMOVE_RECURSE
  "CMakeFiles/archgraph_rt.dir/rt/barrier.cpp.o"
  "CMakeFiles/archgraph_rt.dir/rt/barrier.cpp.o.d"
  "CMakeFiles/archgraph_rt.dir/rt/parallel_for.cpp.o"
  "CMakeFiles/archgraph_rt.dir/rt/parallel_for.cpp.o.d"
  "CMakeFiles/archgraph_rt.dir/rt/prefix_sum.cpp.o"
  "CMakeFiles/archgraph_rt.dir/rt/prefix_sum.cpp.o.d"
  "CMakeFiles/archgraph_rt.dir/rt/thread_pool.cpp.o"
  "CMakeFiles/archgraph_rt.dir/rt/thread_pool.cpp.o.d"
  "libarchgraph_rt.a"
  "libarchgraph_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archgraph_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
