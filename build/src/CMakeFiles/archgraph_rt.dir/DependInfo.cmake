
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/barrier.cpp" "src/CMakeFiles/archgraph_rt.dir/rt/barrier.cpp.o" "gcc" "src/CMakeFiles/archgraph_rt.dir/rt/barrier.cpp.o.d"
  "/root/repo/src/rt/parallel_for.cpp" "src/CMakeFiles/archgraph_rt.dir/rt/parallel_for.cpp.o" "gcc" "src/CMakeFiles/archgraph_rt.dir/rt/parallel_for.cpp.o.d"
  "/root/repo/src/rt/prefix_sum.cpp" "src/CMakeFiles/archgraph_rt.dir/rt/prefix_sum.cpp.o" "gcc" "src/CMakeFiles/archgraph_rt.dir/rt/prefix_sum.cpp.o.d"
  "/root/repo/src/rt/thread_pool.cpp" "src/CMakeFiles/archgraph_rt.dir/rt/thread_pool.cpp.o" "gcc" "src/CMakeFiles/archgraph_rt.dir/rt/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archgraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
