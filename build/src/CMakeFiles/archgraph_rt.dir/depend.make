# Empty dependencies file for archgraph_rt.
# This may be replaced when dependencies are built.
