# Empty dependencies file for archgraph_graph.
# This may be replaced when dependencies are built.
