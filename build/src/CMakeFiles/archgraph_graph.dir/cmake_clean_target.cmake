file(REMOVE_RECURSE
  "libarchgraph_graph.a"
)
