file(REMOVE_RECURSE
  "CMakeFiles/archgraph_graph.dir/graph/csr_graph.cpp.o"
  "CMakeFiles/archgraph_graph.dir/graph/csr_graph.cpp.o.d"
  "CMakeFiles/archgraph_graph.dir/graph/edge_list.cpp.o"
  "CMakeFiles/archgraph_graph.dir/graph/edge_list.cpp.o.d"
  "CMakeFiles/archgraph_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/archgraph_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/archgraph_graph.dir/graph/io.cpp.o"
  "CMakeFiles/archgraph_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/archgraph_graph.dir/graph/linked_list.cpp.o"
  "CMakeFiles/archgraph_graph.dir/graph/linked_list.cpp.o.d"
  "CMakeFiles/archgraph_graph.dir/graph/validate.cpp.o"
  "CMakeFiles/archgraph_graph.dir/graph/validate.cpp.o.d"
  "libarchgraph_graph.a"
  "libarchgraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archgraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
