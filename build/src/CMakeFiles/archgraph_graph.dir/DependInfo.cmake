
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr_graph.cpp" "src/CMakeFiles/archgraph_graph.dir/graph/csr_graph.cpp.o" "gcc" "src/CMakeFiles/archgraph_graph.dir/graph/csr_graph.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/archgraph_graph.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/archgraph_graph.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/archgraph_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/archgraph_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/archgraph_graph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/archgraph_graph.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/linked_list.cpp" "src/CMakeFiles/archgraph_graph.dir/graph/linked_list.cpp.o" "gcc" "src/CMakeFiles/archgraph_graph.dir/graph/linked_list.cpp.o.d"
  "/root/repo/src/graph/validate.cpp" "src/CMakeFiles/archgraph_graph.dir/graph/validate.cpp.o" "gcc" "src/CMakeFiles/archgraph_graph.dir/graph/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archgraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
