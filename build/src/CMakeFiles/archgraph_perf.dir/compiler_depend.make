# Empty compiler generated dependencies file for archgraph_perf.
# This may be replaced when dependencies are built.
