file(REMOVE_RECURSE
  "libarchgraph_perf.a"
)
