file(REMOVE_RECURSE
  "CMakeFiles/archgraph_perf.dir/perf/cost_model.cpp.o"
  "CMakeFiles/archgraph_perf.dir/perf/cost_model.cpp.o.d"
  "libarchgraph_perf.a"
  "libarchgraph_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archgraph_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
