# Empty compiler generated dependencies file for archgraph_common.
# This may be replaced when dependencies are built.
