file(REMOVE_RECURSE
  "CMakeFiles/archgraph_common.dir/common/check.cpp.o"
  "CMakeFiles/archgraph_common.dir/common/check.cpp.o.d"
  "CMakeFiles/archgraph_common.dir/common/prng.cpp.o"
  "CMakeFiles/archgraph_common.dir/common/prng.cpp.o.d"
  "CMakeFiles/archgraph_common.dir/common/table.cpp.o"
  "CMakeFiles/archgraph_common.dir/common/table.cpp.o.d"
  "libarchgraph_common.a"
  "libarchgraph_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archgraph_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
