file(REMOVE_RECURSE
  "libarchgraph_common.a"
)
