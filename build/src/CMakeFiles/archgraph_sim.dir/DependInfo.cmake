
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/archgraph_sim.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/archgraph_sim.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/archgraph_sim.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/archgraph_sim.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/mta/mta_machine.cpp" "src/CMakeFiles/archgraph_sim.dir/sim/mta/mta_machine.cpp.o" "gcc" "src/CMakeFiles/archgraph_sim.dir/sim/mta/mta_machine.cpp.o.d"
  "/root/repo/src/sim/smp/cache.cpp" "src/CMakeFiles/archgraph_sim.dir/sim/smp/cache.cpp.o" "gcc" "src/CMakeFiles/archgraph_sim.dir/sim/smp/cache.cpp.o.d"
  "/root/repo/src/sim/smp/smp_machine.cpp" "src/CMakeFiles/archgraph_sim.dir/sim/smp/smp_machine.cpp.o" "gcc" "src/CMakeFiles/archgraph_sim.dir/sim/smp/smp_machine.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/archgraph_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/archgraph_sim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/task.cpp" "src/CMakeFiles/archgraph_sim.dir/sim/task.cpp.o" "gcc" "src/CMakeFiles/archgraph_sim.dir/sim/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archgraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
