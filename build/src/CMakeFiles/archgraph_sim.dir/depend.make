# Empty dependencies file for archgraph_sim.
# This may be replaced when dependencies are built.
