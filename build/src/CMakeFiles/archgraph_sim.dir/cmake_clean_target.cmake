file(REMOVE_RECURSE
  "libarchgraph_sim.a"
)
