file(REMOVE_RECURSE
  "CMakeFiles/archgraph_sim.dir/sim/machine.cpp.o"
  "CMakeFiles/archgraph_sim.dir/sim/machine.cpp.o.d"
  "CMakeFiles/archgraph_sim.dir/sim/memory.cpp.o"
  "CMakeFiles/archgraph_sim.dir/sim/memory.cpp.o.d"
  "CMakeFiles/archgraph_sim.dir/sim/mta/mta_machine.cpp.o"
  "CMakeFiles/archgraph_sim.dir/sim/mta/mta_machine.cpp.o.d"
  "CMakeFiles/archgraph_sim.dir/sim/smp/cache.cpp.o"
  "CMakeFiles/archgraph_sim.dir/sim/smp/cache.cpp.o.d"
  "CMakeFiles/archgraph_sim.dir/sim/smp/smp_machine.cpp.o"
  "CMakeFiles/archgraph_sim.dir/sim/smp/smp_machine.cpp.o.d"
  "CMakeFiles/archgraph_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/archgraph_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/archgraph_sim.dir/sim/task.cpp.o"
  "CMakeFiles/archgraph_sim.dir/sim/task.cpp.o.d"
  "libarchgraph_sim.a"
  "libarchgraph_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archgraph_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
