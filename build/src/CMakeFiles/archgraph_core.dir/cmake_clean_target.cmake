file(REMOVE_RECURSE
  "libarchgraph_core.a"
)
