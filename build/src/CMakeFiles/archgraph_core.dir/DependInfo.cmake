
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/concomp/cc_variants.cpp" "src/CMakeFiles/archgraph_core.dir/core/concomp/cc_variants.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/concomp/cc_variants.cpp.o.d"
  "/root/repo/src/core/concomp/sequential.cpp" "src/CMakeFiles/archgraph_core.dir/core/concomp/sequential.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/concomp/sequential.cpp.o.d"
  "/root/repo/src/core/concomp/shiloach_vishkin.cpp" "src/CMakeFiles/archgraph_core.dir/core/concomp/shiloach_vishkin.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/concomp/shiloach_vishkin.cpp.o.d"
  "/root/repo/src/core/concomp/spanning_forest.cpp" "src/CMakeFiles/archgraph_core.dir/core/concomp/spanning_forest.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/concomp/spanning_forest.cpp.o.d"
  "/root/repo/src/core/euler/euler_tour.cpp" "src/CMakeFiles/archgraph_core.dir/core/euler/euler_tour.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/euler/euler_tour.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/archgraph_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/exprtree/expression.cpp" "src/CMakeFiles/archgraph_core.dir/core/exprtree/expression.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/exprtree/expression.cpp.o.d"
  "/root/repo/src/core/kernels/baseline_sims.cpp" "src/CMakeFiles/archgraph_core.dir/core/kernels/baseline_sims.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/kernels/baseline_sims.cpp.o.d"
  "/root/repo/src/core/kernels/cc_sv_mta_sim.cpp" "src/CMakeFiles/archgraph_core.dir/core/kernels/cc_sv_mta_sim.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/kernels/cc_sv_mta_sim.cpp.o.d"
  "/root/repo/src/core/kernels/cc_sv_smp_sim.cpp" "src/CMakeFiles/archgraph_core.dir/core/kernels/cc_sv_smp_sim.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/kernels/cc_sv_smp_sim.cpp.o.d"
  "/root/repo/src/core/kernels/lr_hj_sim.cpp" "src/CMakeFiles/archgraph_core.dir/core/kernels/lr_hj_sim.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/kernels/lr_hj_sim.cpp.o.d"
  "/root/repo/src/core/kernels/lr_walk_sim.cpp" "src/CMakeFiles/archgraph_core.dir/core/kernels/lr_walk_sim.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/kernels/lr_walk_sim.cpp.o.d"
  "/root/repo/src/core/kernels/sim_par.cpp" "src/CMakeFiles/archgraph_core.dir/core/kernels/sim_par.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/kernels/sim_par.cpp.o.d"
  "/root/repo/src/core/listrank/compaction.cpp" "src/CMakeFiles/archgraph_core.dir/core/listrank/compaction.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/listrank/compaction.cpp.o.d"
  "/root/repo/src/core/listrank/helman_jaja.cpp" "src/CMakeFiles/archgraph_core.dir/core/listrank/helman_jaja.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/listrank/helman_jaja.cpp.o.d"
  "/root/repo/src/core/listrank/sequential.cpp" "src/CMakeFiles/archgraph_core.dir/core/listrank/sequential.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/listrank/sequential.cpp.o.d"
  "/root/repo/src/core/listrank/wyllie.cpp" "src/CMakeFiles/archgraph_core.dir/core/listrank/wyllie.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/listrank/wyllie.cpp.o.d"
  "/root/repo/src/core/mst/mst.cpp" "src/CMakeFiles/archgraph_core.dir/core/mst/mst.cpp.o" "gcc" "src/CMakeFiles/archgraph_core.dir/core/mst/mst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archgraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
