# Empty dependencies file for archgraph_core.
# This may be replaced when dependencies are built.
