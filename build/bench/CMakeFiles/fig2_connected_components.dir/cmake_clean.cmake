file(REMOVE_RECURSE
  "CMakeFiles/fig2_connected_components.dir/fig2_connected_components.cpp.o"
  "CMakeFiles/fig2_connected_components.dir/fig2_connected_components.cpp.o.d"
  "fig2_connected_components"
  "fig2_connected_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_connected_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
