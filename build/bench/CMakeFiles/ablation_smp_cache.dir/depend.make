# Empty dependencies file for ablation_smp_cache.
# This may be replaced when dependencies are built.
