file(REMOVE_RECURSE
  "CMakeFiles/ablation_smp_cache.dir/ablation_smp_cache.cpp.o"
  "CMakeFiles/ablation_smp_cache.dir/ablation_smp_cache.cpp.o.d"
  "ablation_smp_cache"
  "ablation_smp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
