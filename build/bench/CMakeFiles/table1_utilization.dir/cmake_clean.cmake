file(REMOVE_RECURSE
  "CMakeFiles/table1_utilization.dir/table1_utilization.cpp.o"
  "CMakeFiles/table1_utilization.dir/table1_utilization.cpp.o.d"
  "table1_utilization"
  "table1_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
