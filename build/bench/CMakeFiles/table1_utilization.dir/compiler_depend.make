# Empty compiler generated dependencies file for table1_utilization.
# This may be replaced when dependencies are built.
