file(REMOVE_RECURSE
  "CMakeFiles/micro_native.dir/micro_native.cpp.o"
  "CMakeFiles/micro_native.dir/micro_native.cpp.o.d"
  "micro_native"
  "micro_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
