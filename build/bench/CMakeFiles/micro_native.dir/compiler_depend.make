# Empty compiler generated dependencies file for micro_native.
# This may be replaced when dependencies are built.
