file(REMOVE_RECURSE
  "CMakeFiles/ablation_xmt.dir/ablation_xmt.cpp.o"
  "CMakeFiles/ablation_xmt.dir/ablation_xmt.cpp.o.d"
  "ablation_xmt"
  "ablation_xmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
