# Empty compiler generated dependencies file for ablation_xmt.
# This may be replaced when dependencies are built.
