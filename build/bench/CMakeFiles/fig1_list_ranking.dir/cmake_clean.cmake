file(REMOVE_RECURSE
  "CMakeFiles/fig1_list_ranking.dir/fig1_list_ranking.cpp.o"
  "CMakeFiles/fig1_list_ranking.dir/fig1_list_ranking.cpp.o.d"
  "fig1_list_ranking"
  "fig1_list_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_list_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
