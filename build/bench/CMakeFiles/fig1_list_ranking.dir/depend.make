# Empty dependencies file for fig1_list_ranking.
# This may be replaced when dependencies are built.
