# Empty compiler generated dependencies file for ablation_walks.
# This may be replaced when dependencies are built.
