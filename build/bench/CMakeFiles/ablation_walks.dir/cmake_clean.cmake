file(REMOVE_RECURSE
  "CMakeFiles/ablation_walks.dir/ablation_walks.cpp.o"
  "CMakeFiles/ablation_walks.dir/ablation_walks.cpp.o.d"
  "ablation_walks"
  "ablation_walks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
