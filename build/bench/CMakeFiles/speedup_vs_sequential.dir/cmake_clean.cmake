file(REMOVE_RECURSE
  "CMakeFiles/speedup_vs_sequential.dir/speedup_vs_sequential.cpp.o"
  "CMakeFiles/speedup_vs_sequential.dir/speedup_vs_sequential.cpp.o.d"
  "speedup_vs_sequential"
  "speedup_vs_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_vs_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
