# Empty compiler generated dependencies file for speedup_vs_sequential.
# This may be replaced when dependencies are built.
