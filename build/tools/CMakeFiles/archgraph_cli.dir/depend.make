# Empty dependencies file for archgraph_cli.
# This may be replaced when dependencies are built.
