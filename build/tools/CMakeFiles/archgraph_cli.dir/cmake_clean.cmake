file(REMOVE_RECURSE
  "CMakeFiles/archgraph_cli.dir/archgraph_cli.cpp.o"
  "CMakeFiles/archgraph_cli.dir/archgraph_cli.cpp.o.d"
  "archgraph_cli"
  "archgraph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archgraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
