file(REMOVE_RECURSE
  "CMakeFiles/list_compaction.dir/list_compaction.cpp.o"
  "CMakeFiles/list_compaction.dir/list_compaction.cpp.o.d"
  "list_compaction"
  "list_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
