# Empty compiler generated dependencies file for list_compaction.
# This may be replaced when dependencies are built.
