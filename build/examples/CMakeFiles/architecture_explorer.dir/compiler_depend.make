# Empty compiler generated dependencies file for architecture_explorer.
# This may be replaced when dependencies are built.
