# Empty dependencies file for network_components.
# This may be replaced when dependencies are built.
