file(REMOVE_RECURSE
  "CMakeFiles/network_components.dir/network_components.cpp.o"
  "CMakeFiles/network_components.dir/network_components.cpp.o.d"
  "network_components"
  "network_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
